"""Equivalence suite: the lowered-IR fast replay vs the interpreter.

The bit-identity contract (DESIGN.md): for every program the fast path
can run, lowering + replay produces *exactly* the interpreter's cycles,
every PerfCounters field, and every per-level byte count — not
approximately, bit for bit. These tests pin that contract across all
four chip generations, real compiled workloads, both dtypes, and
hand-built corner-case programs, plus the cache/gating machinery around
the fast path.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.arch import TPUV1, TPUV2, TPUV3, TPUV4I
from repro.compiler import compile_model
from repro.compiler.pipeline import retarget_dtype
from repro.engine.lowered import (
    clear_lowered,
    lowered_cache_disabled,
    lowered_cache_size,
    lowered_cache_stats,
    lowered_program,
)
from repro.isa import Bundle, Instruction, Opcode, Program
from repro.sim import TensorCoreSim
from repro.sim.lowered import (
    ENGINES_PER_LEVEL,
    ENV_FASTSIM,
    FastReplay,
    fastsim_disabled,
    fastsim_enabled,
    lower_program,
    replay,
)
from repro.workloads import app_by_name

ALL_CHIPS = (TPUV1, TPUV2, TPUV3, TPUV4I)
APPS = ("mlp0", "cnn0", "rnn0")
BATCHES = (1, 8)


def _dtypes(chip):
    return tuple(d for d in ("bf16", "int8") if chip.supports_dtype(d))


def _assert_identical(interp, fast):
    """Bit-identity over cycles, every counter field, and every level."""
    assert fast.cycles == interp.cycles
    for field in dataclasses.fields(interp.counters):
        assert (getattr(fast.counters, field.name)
                == getattr(interp.counters, field.name)), field.name
    assert (fast.counters.bytes_by_level.keys()
            == interp.counters.bytes_by_level.keys())
    assert fast.counters == interp.counters
    assert fast.report == interp.report


@pytest.fixture(scope="module")
def compiled_programs():
    """{(chip.name, app, batch): (chip, program)} for the identity sweep."""
    programs = {}
    for chip in ALL_CHIPS:
        for app in APPS:
            spec = app_by_name(app)
            for batch in BATCHES:
                module = spec.build(batch)
                if not chip.supports_dtype("bf16"):  # TPUv1 is int8-only
                    module = retarget_dtype(module, "int8")
                program = compile_model(module, chip).program
                programs[(chip.name, app, batch)] = (chip, program)
    return programs


class TestBitIdentityOnWorkloads:
    @pytest.mark.parametrize("chip", ALL_CHIPS, ids=lambda c: c.name)
    @pytest.mark.parametrize("app", APPS)
    @pytest.mark.parametrize("batch", BATCHES)
    def test_replay_matches_interpreter(self, compiled_programs, chip, app,
                                        batch):
        chip, program = compiled_programs[(chip.name, app, batch)]
        sim = TensorCoreSim(chip)
        lowered = lower_program(program, chip)
        for dtype in _dtypes(chip):
            interp = sim.run_interpreted(program, dtype=dtype)
            fast = sim.replay.run(lowered, dtype=dtype)
            _assert_identical(interp, fast)

    def test_one_lowering_serves_both_dtypes(self, compiled_programs):
        """The lowered form is dtype-independent (width scales only bytes)."""
        chip, program = compiled_programs[("TPUv4i", "cnn0", 8)]
        sim = TensorCoreSim(chip)
        lowered = lower_program(program, chip)
        bf16 = sim.replay.run(lowered, dtype="bf16")
        int8 = sim.replay.run(lowered, dtype="int8")
        _assert_identical(sim.run_interpreted(program, dtype="bf16"), bf16)
        _assert_identical(sim.run_interpreted(program, dtype="int8"), int8)
        assert (int8.counters.bytes_by_level["vmem"]
                == bf16.counters.bytes_by_level["vmem"] / 2)


class TestBitIdentityOnCornerCases:
    """Hand-built programs that stress the replay loop's tricky paths."""

    def _both(self, program, chip=TPUV4I, dtype="bf16"):
        sim = TensorCoreSim(chip)
        interp = sim.run_interpreted(program, dtype=dtype)
        fast = replay(lower_program(program, chip), chip, dtype=dtype)
        _assert_identical(interp, fast)
        return interp

    def _program(self, *bundles):
        program = Program("hand", generation=4)
        for bundle in bundles:
            program.append(Bundle(tuple(bundle)))
        program.append(Bundle((Instruction(Opcode.HALT),)))
        return program

    def test_dma_contention_and_engine_pool(self):
        """>4 concurrent DMAs: engine reuse + contention-scaled bandwidth."""
        mib = 2**20
        dmas = [Instruction(Opcode.DMA_IN, (0, (i + 1) * mib, i))
                for i in range(6)]
        program = self._program(  # 3 per bundle: 4 DMA slots/bundle max
            dmas[:3], dmas[3:], [Instruction(Opcode.SYNC_WAIT, (5,))])
        result = self._both(program)
        assert result.counters.sync_stall_cycles > 0

    def test_dma_flag_overwrite_and_rewait(self):
        """Two DMAs stamping one flag; the later completion wins."""
        program = self._program(
            [Instruction(Opcode.DMA_IN, (0, 2**20, 1)),
             Instruction(Opcode.DMA_IN, (0, 2**24, 1))],
            [Instruction(Opcode.SYNC_WAIT, (1,)),
             Instruction(Opcode.MXM, (128, 128, 128))])
        self._both(program)

    def test_sync_set_then_wait_is_free(self):
        program = self._program(
            [Instruction(Opcode.SYNC_SET, (2,))],
            [Instruction(Opcode.SYNC_WAIT, (2,))],
            [Instruction(Opcode.SYNC_WAIT, (9,))])  # never set
        result = self._both(program)
        assert result.counters.sync_stall_cycles == 0

    def test_mixed_units_overlap(self):
        program = self._program(
            [Instruction(Opcode.MXM, (512, 512, 512)),
             Instruction(Opcode.VADD, (65536,)),
             Instruction(Opcode.VREDUCE, (4096, 64)),
             Instruction(Opcode.SADD, (1, 2, 3))],
            [Instruction(Opcode.MXM_LOADW, (128, 128)),
             Instruction(Opcode.MXM_TRANSPOSE, (64, 0)),
             Instruction(Opcode.VMUL, (1000,))])
        result = self._both(program)
        assert result.counters.scalar_ops == 1

    def test_halt_mid_program_truncates(self):
        program = Program("h", generation=4)
        program.append(Bundle((Instruction(Opcode.MXM, (128, 128, 128)),)))
        program.append(Bundle((Instruction(Opcode.HALT),
                               Instruction(Opcode.MXM, (512, 512, 512)))))
        program.append(Bundle((Instruction(Opcode.MXM, (512, 512, 512)),)))
        result = self._both(program)
        assert result.counters.bundles == 2  # third bundle is dead code

    def test_empty_program_costs_one_cycle(self):
        program = Program("empty", generation=4)
        self._both(program)
        assert replay(lower_program(program, TPUV4I), TPUV4I).cycles == 1

    def test_int8_on_v1(self):
        program = Program("v1", generation=1)
        program.append(Bundle((Instruction(Opcode.MXM, (256, 256, 256)),
                               Instruction(Opcode.DMA_IN, (0, 2**20, 0)))))
        self._both(program, chip=TPUV1, dtype="int8")


class TestErrorParity:
    """lower/replay raise exactly where the interpreter raises."""

    def test_unreachable_dma_level(self):
        # TPUv1 has no CMEM, so a CMEM DMA (level 1) has no engine pool.
        program = Program("bad", generation=1)
        program.append(Bundle((Instruction(Opcode.DMA_IN, (1, 1024, 0)),)))
        with pytest.raises(ValueError) as interp_err:
            TensorCoreSim(TPUV1).run_interpreted(program, dtype="int8")
        with pytest.raises(ValueError) as lower_err:
            lower_program(program, TPUV1)
        assert str(interp_err.value) == str(lower_err.value)

    def test_generation_mismatch_at_lower_and_replay(self):
        program = Program("v4", generation=4)
        with pytest.raises(ValueError, match="Recompile"):
            lower_program(program, TPUV3)
        lowered = lower_program(program, TPUV4I)
        with pytest.raises(ValueError, match="Recompile"):
            FastReplay(TPUV3).run(lowered)

    def test_unsupported_dtype_at_replay(self):
        program = Program("v2", generation=2)
        lowered = lower_program(program, TPUV2)
        with pytest.raises(ValueError, match="does not support"):
            FastReplay(TPUV2).run(lowered, dtype="int8")


class TestLoweredForm:
    def test_kind_histogram_and_len(self, compiled_programs):
        chip, program = compiled_programs[("TPUv4i", "mlp0", 1)]
        lowered = lower_program(program, chip)
        histogram = lowered.kind_histogram()
        assert histogram["mxm"] > 0
        assert histogram["bundle"] > 0
        assert sum(histogram.values()) == len(lowered)

    def test_arrays_export(self, compiled_programs):
        chip, program = compiled_programs[("TPUv4i", "mlp0", 1)]
        lowered = lower_program(program, chip)
        columns = lowered.arrays()
        if columns is None:  # pragma: no cover - numpy is baked in
            pytest.skip("numpy unavailable")
        assert set(columns) == {"kind", "a0", "a1", "a2", "f"}
        assert all(len(col) == len(lowered) for col in columns.values())

    def test_engines_per_level_matches_core(self):
        from repro.sim.core import _ENGINES_PER_LEVEL

        assert ENGINES_PER_LEVEL == _ENGINES_PER_LEVEL


class TestLoweredCache:
    def test_hits_misses_and_append_invalidation(self):
        program = Program("cached", generation=4)
        program.append(Bundle((Instruction(Opcode.MXM, (128, 128, 128)),)))
        clear_lowered()
        try:
            first = lowered_program(program, TPUV4I)
            second = lowered_program(program, TPUV4I)
            assert first is second
            assert lowered_cache_size() == 1
            stats = lowered_cache_stats()
            assert (stats.hits, stats.misses) == (1, 1)

            # Mutating the program changes its signature: no stale reuse.
            program.append(Bundle((Instruction(Opcode.MXM, (64, 64, 64)),)))
            third = lowered_program(program, TPUV4I)
            assert third is not second
            assert len(third) == len(second) + 2  # bundle marker + mxm
            assert lowered_cache_size() == 2
        finally:
            clear_lowered()

    def test_distinct_chips_distinct_entries(self):
        program = Program("multi", generation=4)
        clear_lowered()
        try:
            lowered_program(program, TPUV4I)
            assert lowered_cache_size() == 1
            # A structurally identical but distinct Program object hits.
            clone = Program("multi", generation=4)
            lowered_program(clone, TPUV4I)
            stats = lowered_cache_stats()
            assert stats.hits == 1
            assert stats.hit_rate == 0.5
        finally:
            clear_lowered()

    def test_disabled_cache_lowers_fresh(self):
        program = Program("fresh", generation=4)
        clear_lowered()
        try:
            with lowered_cache_disabled():
                a = lowered_program(program, TPUV4I)
                b = lowered_program(program, TPUV4I)
            assert a is not b
            assert a == b
            assert lowered_cache_size() == 0
        finally:
            clear_lowered()


class TestGating:
    def _mxm_program(self):
        program = Program("gate", generation=4)
        program.append(Bundle((Instruction(Opcode.MXM, (128, 128, 128)),)))
        return program

    def test_default_run_uses_fast_path(self):
        clear_lowered()
        try:
            assert fastsim_enabled()
            TensorCoreSim(TPUV4I).run(self._mxm_program())
            assert lowered_cache_size() == 1  # routed through lowering
        finally:
            clear_lowered()

    def test_env_gate_forces_interpreter(self, monkeypatch):
        monkeypatch.setenv(ENV_FASTSIM, "0")
        assert not fastsim_enabled()
        clear_lowered()
        try:
            result = TensorCoreSim(TPUV4I).run(self._mxm_program())
            assert lowered_cache_size() == 0  # never lowered
            assert result.cycles >= 1
        finally:
            clear_lowered()
        monkeypatch.setenv(ENV_FASTSIM, "off")
        assert not fastsim_enabled()
        monkeypatch.setenv(ENV_FASTSIM, "1")
        assert fastsim_enabled()

    def test_context_manager_forces_interpreter(self):
        clear_lowered()
        try:
            with fastsim_disabled():
                assert not fastsim_enabled()
                with fastsim_disabled():  # reentrant
                    assert not fastsim_enabled()
                assert not fastsim_enabled()
                TensorCoreSim(TPUV4I).run(self._mxm_program())
            assert fastsim_enabled()
            assert lowered_cache_size() == 0
        finally:
            clear_lowered()

    def test_trace_runs_use_interpreter(self):
        clear_lowered()
        try:
            result = TensorCoreSim(TPUV4I).run(self._mxm_program(),
                                               trace=True)
            assert result.trace is not None
            assert len(result.trace.events) > 0
            assert lowered_cache_size() == 0
        finally:
            clear_lowered()

    def test_fast_result_carries_no_trace(self):
        result = TensorCoreSim(TPUV4I).run(self._mxm_program())
        assert result.trace is None
