"""Tests for the per-operator profiler and remaining thin-coverage paths."""

import pytest

from repro.arch import TPUV3, TPUV4I
from repro.compiler import compile_model, profile_module
from repro.core import DesignPoint
from repro.serving import (
    BatchPolicy,
    MultiTenantSim,
    ServingSimulator,
    Slo,
    Tenant,
    partition_cmem,
)
from repro.sim import TensorCoreSim
from repro.workloads import RequestGenerator, app_by_name

from tests.conftest import make_tiny_mlp


class TestProfiler:
    def test_tiny_mlp_attribution(self, tiny_mlp):
        profile = profile_module(tiny_mlp, TPUV4I)
        assert profile.total_cycles > 0
        categories = profile.category_cycles()
        assert set(categories) == {"mxu", "vpu", "dma"}
        assert sum(categories.values()) == profile.total_cycles

    def test_bert_is_mxu_dominated(self):
        module = app_by_name("bert0").build(4)
        profile = profile_module(module, TPUV4I)
        categories = profile.category_cycles()
        assert categories["mxu"] > categories["vpu"]
        assert categories["mxu"] > categories["dma"]

    def test_rnn_weight_streaming_shows_in_dma(self):
        """Without CMEM, rnn0's profile shifts toward memory."""
        module = app_by_name("rnn0").build(8)
        with_cmem = profile_module(module, TPUV4I)
        without = profile_module(module, TPUV3)  # no CMEM on v3
        share_with = (with_cmem.category_cycles()["dma"]
                      / with_cmem.total_cycles)
        share_without = without.category_cycles()["dma"] / without.total_cycles
        assert share_without > share_with

    def test_top_sorted_descending(self, tiny_mlp):
        profile = profile_module(tiny_mlp, TPUV4I)
        top = profile.top(5)
        assert all(a.total_cycles >= b.total_cycles
                   for a, b in zip(top, top[1:]))
        with pytest.raises(ValueError):
            profile.top(0)

    def test_unoverlapped_exceeds_simulated(self, tiny_mlp):
        """The profiler's sum is an upper bound on the pipelined latency."""
        profile = profile_module(tiny_mlp, TPUV4I)
        simulated = TensorCoreSim(TPUV4I).run(
            compile_model(tiny_mlp, TPUV4I).program)
        assert profile.total_cycles >= simulated.cycles * 0.9

    def test_render(self, tiny_mlp):
        text = profile_module(tiny_mlp, TPUV4I).render(3)
        assert "split:" in text
        assert "mxu" in text

    def test_bound_by_labels(self, tiny_mlp):
        profile = profile_module(tiny_mlp, TPUV4I)
        assert all(op.bound_by in ("mxu", "vpu", "dma")
                   for op in profile.ops)


class TestThinCoveragePaths:
    def test_partition_cmem_without_cmem_chip(self, v3_point):
        tenants = [Tenant(app_by_name("cnn0"), 10),
                   Tenant(app_by_name("rnn0"), 10)]
        budgets = partition_cmem(v3_point, tenants)
        assert all(b == 0 for b in budgets.values())

    def test_multitenancy_on_cmem_less_chip(self, v3_point):
        tenants = [Tenant(app_by_name("cnn0"), 10),
                   Tenant(app_by_name("rnn0"), 10)]
        sim = MultiTenantSim(v3_point, tenants)
        reqs = RequestGenerator(21).multi_tenant(["cnn0", "rnn0"],
                                                 [10, 10], 1.0)
        swap = sim.simulate(reqs, "swap")
        assert swap.swap_seconds_total == 0.0  # nothing to restage

    def test_serving_on_two_core_chip(self, v3_point):
        spec = app_by_name("cnn0")
        server = ServingSimulator(v3_point, spec,
                                  BatchPolicy(max_batch=8, max_wait_s=0.001),
                                  Slo(spec.slo_ms / 1e3))
        stats = server.simulate(RequestGenerator(22).poisson("c", 500, 1.0))
        assert stats.requests > 0
        assert stats.p99_s > 0

    def test_two_core_serves_more_than_one_core(self):
        """TPUv3's second core is a second server in the event loop."""
        spec = app_by_name("cnn0")
        one_core = DesignPoint(TPUV3.variant("v3-1c", cores=1))
        two_core = DesignPoint(TPUV3)
        policy = BatchPolicy(max_batch=4, max_wait_s=0.0005)
        slo = Slo(spec.slo_ms / 1e3)
        reqs = RequestGenerator(23).poisson("c", 4000, 1.0)
        p99_one = ServingSimulator(one_core, spec, policy, slo).simulate(reqs).p99_s
        p99_two = ServingSimulator(two_core, spec, policy, slo).simulate(reqs).p99_s
        assert p99_two < p99_one

    def test_roofline_curve_helper(self):
        from repro.roofline import chip_roofline
        from repro.roofline.model import roofline_curve

        roof = chip_roofline(TPUV4I, "hbm")
        curve = roofline_curve(roof, [1.0, roof.ridge_ops_per_byte, 1e4])
        assert curve[-1][1] == pytest.approx(TPUV4I.peak_tops, rel=1e-6)

    def test_weight_load_bytes_split_partial(self):
        from repro.compiler.allocator import plan_memory, weight_load_bytes
        from repro.util.units import MIB

        module = app_by_name("bert0").build(1)
        plan = plan_memory(module, TPUV4I, cmem_budget_bytes=64 * MIB)
        cmem, hbm = weight_load_bytes(module, plan)
        assert cmem > 0 and hbm > 0
        assert cmem + hbm == module.total_weight_bytes()
