"""Tests for compiler-vs-binary compatibility (Lesson 2, E13)."""

import pytest

from repro.arch import TPUV1, TPUV2, TPUV3, TPUV4I
from repro.compiler import binary_runs_on, compile_model, migrate_model


class TestBinaryPortability:
    def test_binary_stays_home(self, tiny_mlp):
        compiled = compile_model(tiny_mlp, TPUV3)
        assert binary_runs_on(compiled, TPUV3)

    def test_binary_never_crosses(self, tiny_mlp):
        compiled = compile_model(tiny_mlp, TPUV3)
        for target in (TPUV2, TPUV4I):
            assert not binary_runs_on(compiled, target)


class TestMigration:
    def test_v3_to_v4i_recompiles(self, tiny_mlp):
        report = migrate_model(tiny_mlp, TPUV3, TPUV4I)
        assert not report.binary_portable
        assert report.recompiled
        assert report.retargeted_dtype is None
        assert "recompile" in report.notes

    def test_v3_to_v1_needs_quantization(self, tiny_mlp):
        report = migrate_model(tiny_mlp, TPUV3, TPUV4I.variant(
            "int8only", dtypes=("int8",), isa_version=4))
        assert report.recompiled
        assert report.retargeted_dtype == "int8"
        assert "re-validated" in report.notes

    def test_same_generation_binary_carries(self, tiny_mlp):
        report = migrate_model(tiny_mlp, TPUV3, TPUV3)
        assert report.binary_portable
        assert "carries over" in report.notes

    def test_v2_to_v3_upgrade_path(self, tiny_mlp):
        report = migrate_model(tiny_mlp, TPUV2, TPUV3)
        assert not report.binary_portable
        assert report.recompiled

    def test_full_cross_generation_matrix(self, tiny_mlp):
        """Every (bf16-capable source, target) pair recompiles; none ports."""
        chips = (TPUV2, TPUV3, TPUV4I)
        for source in chips:
            for target in chips:
                report = migrate_model(tiny_mlp, source, target)
                assert report.recompiled
                assert report.binary_portable == (source is target)
