"""Tests for pipeline-parallel multi-chip deployment."""

import pytest

from repro.arch import TPUV1, TPUV4I
from repro.core import PipelineDeployment, partition_module
from repro.workloads import app_by_name

from tests.conftest import make_tiny_mlp


class TestPartition:
    def test_single_stage_is_identity(self, tiny_mlp):
        stages, boundaries = partition_module(tiny_mlp, 1)
        assert stages == [tiny_mlp]
        assert boundaries == [0]

    def test_two_stages_validate_and_cover_flops(self):
        module = app_by_name("bert0").build(2)
        stages, boundaries = partition_module(module, 2)
        assert len(stages) == 2
        for stage in stages:
            stage.validate()
        total = sum(s.total_flops() for s in stages)
        assert total == pytest.approx(module.total_flops(), rel=0.01)

    def test_stages_are_roughly_balanced(self):
        module = app_by_name("bert0").build(2)
        stages, _ = partition_module(module, 4)
        flops = [s.total_flops() for s in stages]
        assert max(flops) < 2.5 * min(flops)

    def test_boundary_traffic_positive_after_first(self):
        module = app_by_name("cnn0").build(2)
        _, boundaries = partition_module(module, 2)
        assert boundaries[0] == 0
        assert boundaries[1] > 0

    def test_weights_partition_across_stages(self):
        module = app_by_name("rnn1").build(2)
        stages, _ = partition_module(module, 4)
        per_stage = [s.total_weight_bytes() for s in stages]
        # Each stage holds a strict subset of the weights.
        assert all(0 < w < module.total_weight_bytes() for w in per_stage)
        # Replication (a layer whose consumers span a boundary copies its
        # weights into both stages) stays bounded.
        assert sum(per_stage) < 2.0 * module.total_weight_bytes()

    def test_too_many_stages_rejected(self, tiny_mlp):
        with pytest.raises(ValueError):
            partition_module(tiny_mlp, 64)

    def test_zero_stages_rejected(self, tiny_mlp):
        with pytest.raises(ValueError):
            partition_module(tiny_mlp, 0)


class TestDeployment:
    def test_single_chip_matches_direct_sim(self):
        spec = app_by_name("bert0")
        deployment = PipelineDeployment()
        report = deployment.deploy(spec.build(4), 1, 4)
        assert report.num_chips == 1
        assert report.request_latency_s > 0
        assert report.stages[0].inbound_transfer_s == 0.0

    def test_throughput_scales_with_chips(self):
        spec = app_by_name("bert0")
        deployment = PipelineDeployment()
        reports = deployment.scaling_study(spec.build, 4, (1, 2))
        assert reports[1].throughput_qps > 1.5 * reports[0].throughput_qps

    def test_cmem_overflow_model_scales_superlinearly(self):
        """The headline multi-chip effect: slices newly fit CMEM."""
        spec = app_by_name("rnn1")
        deployment = PipelineDeployment()
        reports = deployment.scaling_study(spec.build, spec.default_batch,
                                           (1, 2))
        speedup = reports[1].throughput_qps / reports[0].throughput_qps
        assert speedup > 2.0
        assert reports[1].min_cmem_hit > reports[0].min_cmem_hit

    def test_latency_does_not_explode(self):
        spec = app_by_name("bert0")
        deployment = PipelineDeployment()
        one = deployment.deploy(spec.build(4), 1, 4)
        four = deployment.deploy(spec.build(4), 4, 4)
        assert four.request_latency_s < 1.5 * one.request_latency_s

    def test_no_ici_chip_rejected(self):
        deployment = PipelineDeployment(TPUV1)
        quantized = make_tiny_mlp()
        with pytest.raises(ValueError):
            deployment.deploy(quantized, 2, 4)

    def test_describe(self):
        spec = app_by_name("cnn0")
        report = PipelineDeployment().deploy(spec.build(2), 2, 2)
        assert "2x TPUv4i" in report.describe()
