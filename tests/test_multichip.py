"""Tests for pipeline-parallel multi-chip deployment."""

import pytest

from repro.arch import TPUV1, TPUV4I
from repro.core import PipelineDeployment, partition_module
from repro.graph import GraphBuilder, Shape
from repro.workloads import app_by_name

from tests.conftest import make_tiny_mlp


def make_single_op_module():
    """One compute instruction (a lone matmul): the smallest
    partitionable module."""
    builder = GraphBuilder("single")
    x = builder.parameter(Shape((4, 64)), "x")
    w = builder.constant(Shape((64, 16)), "w")
    out = builder.dot(x, w, "out")
    module = builder.build()
    module.set_root(out)
    return module


class TestPartition:
    def test_single_stage_is_identity(self, tiny_mlp):
        stages, boundaries = partition_module(tiny_mlp, 1)
        assert stages == [tiny_mlp]
        assert boundaries == [0]

    def test_two_stages_validate_and_cover_flops(self):
        module = app_by_name("bert0").build(2)
        stages, boundaries = partition_module(module, 2)
        assert len(stages) == 2
        for stage in stages:
            stage.validate()
        total = sum(s.total_flops() for s in stages)
        assert total == pytest.approx(module.total_flops(), rel=0.01)

    def test_stages_are_roughly_balanced(self):
        module = app_by_name("bert0").build(2)
        stages, _ = partition_module(module, 4)
        flops = [s.total_flops() for s in stages]
        assert max(flops) < 2.5 * min(flops)

    def test_boundary_traffic_positive_after_first(self):
        module = app_by_name("cnn0").build(2)
        _, boundaries = partition_module(module, 2)
        assert boundaries[0] == 0
        assert boundaries[1] > 0

    def test_weights_partition_across_stages(self):
        module = app_by_name("rnn1").build(2)
        stages, _ = partition_module(module, 4)
        per_stage = [s.total_weight_bytes() for s in stages]
        # Each stage holds a strict subset of the weights.
        assert all(0 < w < module.total_weight_bytes() for w in per_stage)
        # Replication (a layer whose consumers span a boundary copies its
        # weights into both stages) stays bounded.
        assert sum(per_stage) < 2.0 * module.total_weight_bytes()

    def test_too_many_stages_rejected(self, tiny_mlp):
        with pytest.raises(ValueError):
            partition_module(tiny_mlp, 64)

    def test_stages_beyond_layer_count_name_the_empty_stage(self, tiny_mlp):
        """num_stages > layer count: the error says which stage is empty
        rather than failing downstream with a shapeless module."""
        with pytest.raises(ValueError, match="stage .* empty"):
            partition_module(tiny_mlp, 64)

    def test_single_op_module_partitions_only_to_one_stage(self):
        """A module whose graph is a single compute layer: p=1 is the
        identity, any p>1 must be a clean rejection."""
        module = make_single_op_module()
        stages, boundaries = partition_module(module, 1)
        assert stages == [module]
        assert boundaries == [0]
        with pytest.raises(ValueError):
            partition_module(module, 2)

    def test_stage_assignment_deterministic(self):
        """Same module, same p -> identical stage instruction lists and
        boundary bytes, across repeated partitions of rebuilt modules."""
        first = partition_module(app_by_name("bert0").build(2), 3)
        second = partition_module(app_by_name("bert0").build(2), 3)
        names_a = [[(inst.opcode, inst.name) for inst in stage.instructions]
                   for stage in first[0]]
        names_b = [[(inst.opcode, inst.name) for inst in stage.instructions]
                   for stage in second[0]]
        assert names_a == names_b
        assert first[1] == second[1]

    def test_zero_stages_rejected(self, tiny_mlp):
        with pytest.raises(ValueError):
            partition_module(tiny_mlp, 0)


class TestDeployment:
    def test_single_chip_matches_direct_sim(self):
        spec = app_by_name("bert0")
        deployment = PipelineDeployment()
        report = deployment.deploy(spec.build(4), 1, 4)
        assert report.num_chips == 1
        assert report.request_latency_s > 0
        assert report.stages[0].inbound_transfer_s == 0.0

    def test_throughput_scales_with_chips(self):
        spec = app_by_name("bert0")
        deployment = PipelineDeployment()
        reports = deployment.scaling_study(spec.build, 4, (1, 2))
        assert reports[1].throughput_qps > 1.5 * reports[0].throughput_qps

    def test_cmem_overflow_model_scales_superlinearly(self):
        """The headline multi-chip effect: slices newly fit CMEM."""
        spec = app_by_name("rnn1")
        deployment = PipelineDeployment()
        reports = deployment.scaling_study(spec.build, spec.default_batch,
                                           (1, 2))
        speedup = reports[1].throughput_qps / reports[0].throughput_qps
        assert speedup > 2.0
        assert reports[1].min_cmem_hit > reports[0].min_cmem_hit

    def test_latency_does_not_explode(self):
        spec = app_by_name("bert0")
        deployment = PipelineDeployment()
        one = deployment.deploy(spec.build(4), 1, 4)
        four = deployment.deploy(spec.build(4), 4, 4)
        assert four.request_latency_s < 1.5 * one.request_latency_s

    def test_no_ici_chip_rejected(self):
        deployment = PipelineDeployment(TPUV1)
        quantized = make_tiny_mlp()
        with pytest.raises(ValueError):
            deployment.deploy(quantized, 2, 4)

    def test_describe(self):
        spec = app_by_name("cnn0")
        report = PipelineDeployment().deploy(spec.build(2), 2, 2)
        assert "2x TPUv4i" in report.describe()
