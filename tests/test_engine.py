"""The shared evaluation engine: cache correctness, parallel determinism.

The engine's contract is strict: cached, uncached, serial and parallel
evaluation of the same (chip, compiler, workload, batch, budget) inputs
must produce *identical* records — not approximately equal ones. These
tests assert that, plus the disk tier's round-trip/invalidation behavior
and the simulator reentrancy the process pool relies on.
"""

from __future__ import annotations

import pickle

import pytest

from repro.arch.chip import TPUV4I
from repro.compiler.versions import RELEASES
from repro.core.design_point import (
    DesignPoint,
    clear_shared_design_points,
    shared_design_point,
)
from repro.core.dse import (
    cmem_sweep,
    enumerate_candidates,
    evaluate_candidate,
    evaluate_candidates,
    pareto_frontier,
)
from repro.engine import (
    EvalCache,
    ParallelSweeper,
    chip_fingerprint,
    compiler_fingerprint,
    engine_disabled,
    eval_key,
)
from repro.engine.cache import get_cache
from repro.serving.batching import BatchPolicy
from repro.serving.server import ServingSimulator
from repro.serving.slo import Slo
from repro.sim.core import TensorCoreSim
from repro.util.units import MIB
from repro.workloads.models import app_by_name

# Small, fast workloads: the contract is about identity, not scale.
GRID_CHIPS = (TPUV4I, TPUV4I.variant("v4i-2mxu", mxus_per_core=2))
GRID_APPS = ("mlp0", "cnn0")
GRID_BATCHES = (1, 8)


def _fields(evaluation):
    return (evaluation.workload, evaluation.chip, evaluation.batch,
            evaluation.latency_s, evaluation.chip_qps,
            evaluation.chip_power_w, evaluation.achieved_tops_chip,
            evaluation.mxu_utilization, evaluation.cmem_hit_fraction)


class TestCacheEquivalence:
    def test_cache_on_off_identical_over_grid(self):
        """Cached and uncached evaluation agree field-for-field."""
        cache = EvalCache()
        off = EvalCache(enabled=False)
        for chip in GRID_CHIPS:
            for app in GRID_APPS:
                spec = app_by_name(app)
                for batch in GRID_BATCHES:
                    uncached = DesignPoint(chip, cache=off).evaluate(
                        spec, batch)
                    cold = DesignPoint(chip, cache=cache).evaluate(spec, batch)
                    # Fresh point, warm cache: must come from the cache.
                    before = cache.stats.hits
                    warm = DesignPoint(chip, cache=cache).evaluate(spec, batch)
                    assert cache.stats.hits > before
                    assert _fields(uncached) == _fields(cold) == _fields(warm)

    def test_sim_results_identical_cache_on_off(self):
        spec = app_by_name("cnn0")
        cache = EvalCache()
        cold = DesignPoint(TPUV4I, cache=cache).run(spec, 4)
        warm = DesignPoint(TPUV4I, cache=cache).run(spec, 4)
        off = DesignPoint(TPUV4I, cache=EvalCache(enabled=False)).run(spec, 4)
        assert cold.cycles == warm.cycles == off.cycles
        assert cold.counters == warm.counters == off.counters

    def test_engine_disabled_context_matches_enabled(self):
        spec = app_by_name("mlp0")
        with engine_disabled():
            legacy = DesignPoint(TPUV4I).evaluate(spec, 4)
        engined = DesignPoint(TPUV4I).evaluate(spec, 4)
        assert _fields(legacy) == _fields(engined)


class TestDiskTier:
    def test_round_trip_across_cache_instances(self, tmp_path):
        spec = app_by_name("mlp0")
        writer = EvalCache(disk_dir=tmp_path)
        first = DesignPoint(TPUV4I, cache=writer).evaluate(spec, 2)
        assert writer.disk_entry_count() > 0
        assert writer.disk_size_bytes() > 0

        # A fresh cache over the same directory = a new process.
        reader = EvalCache(disk_dir=tmp_path)
        second = DesignPoint(TPUV4I, cache=reader).evaluate(spec, 2)
        assert reader.stats.disk_hits >= 1
        assert reader.stats.misses == 0
        assert _fields(first) == _fields(second)

    def test_invalidation_on_chip_and_compiler_change(self, tmp_path):
        spec = app_by_name("mlp0")
        cache = EvalCache(disk_dir=tmp_path)
        DesignPoint(TPUV4I, cache=cache).evaluate(spec, 2)

        # Any chip-field change must miss (key covers every field).
        tweaked = TPUV4I.variant("v4i-fast", clock_hz=TPUV4I.clock_hz * 1.1)
        fresh = EvalCache(disk_dir=tmp_path)
        DesignPoint(tweaked, cache=fresh).evaluate(spec, 2)
        assert fresh.stats.disk_hits == 0
        assert fresh.stats.misses > 0

        # So must a different compiler release.
        fresh2 = EvalCache(disk_dir=tmp_path)
        DesignPoint(TPUV4I, version=RELEASES[0],
                    cache=fresh2).evaluate(spec, 2)
        assert fresh2.stats.disk_hits == 0

    def test_corrupt_disk_entry_is_recomputed(self, tmp_path):
        spec = app_by_name("mlp0")
        cache = EvalCache(disk_dir=tmp_path)
        result = DesignPoint(TPUV4I, cache=cache).evaluate(spec, 2)
        for path in tmp_path.glob("*.pkl"):
            path.write_bytes(b"not a pickle")
        reader = EvalCache(disk_dir=tmp_path)
        again = DesignPoint(TPUV4I, cache=reader).evaluate(spec, 2)
        assert _fields(result) == _fields(again)

    def test_clear_removes_disk_entries(self, tmp_path):
        spec = app_by_name("mlp0")
        cache = EvalCache(disk_dir=tmp_path)
        DesignPoint(TPUV4I, cache=cache).evaluate(spec, 2)
        cache.clear(disk=True)
        assert cache.entry_count() == 0
        assert cache.disk_entry_count() == 0


class TestKeys:
    def test_fingerprints_stable_and_sensitive(self):
        assert chip_fingerprint(TPUV4I) == chip_fingerprint(TPUV4I)
        assert (chip_fingerprint(TPUV4I)
                != chip_fingerprint(TPUV4I.variant("x", clock_hz=1e9)))
        assert (compiler_fingerprint(RELEASES[0])
                != compiler_fingerprint(RELEASES[-1]))

    def test_eval_key_covers_every_input(self):
        chip_fp = chip_fingerprint(TPUV4I)
        comp_fp = compiler_fingerprint(RELEASES[-1])
        base = eval_key("sim", chip_fp, comp_fp, "mlp0", 4, None, "bf16")
        assert base != eval_key("eval", chip_fp, comp_fp, "mlp0", 4,
                                None, "bf16")
        assert base != eval_key("sim", chip_fp, comp_fp, "mlp0", 8,
                                None, "bf16")
        assert base != eval_key("sim", chip_fp, comp_fp, "mlp0", 4,
                                64 * MIB, "bf16")
        assert base != eval_key("sim", chip_fp, comp_fp, "mlp0", 4,
                                None, "int8")
        assert base != eval_key("sim", chip_fp, comp_fp, "cnn0", 4,
                                None, "bf16")


def _square(x: int) -> int:
    return x * x


class TestParallelSweeper:
    def test_order_preserving_merge(self):
        items = list(range(23))
        expected = [x * x for x in items]
        assert ParallelSweeper(workers=1).map(_square, items) == expected
        assert ParallelSweeper(workers=2).map(_square, items) == expected
        assert ParallelSweeper(workers=2, chunk_size=3).map(
            _square, items) == expected

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            ParallelSweeper(workers=0)
        with pytest.raises(ValueError):
            ParallelSweeper(chunk_size=0)

    def test_parallel_equals_serial_candidates(self):
        """The pareto_frontier inputs are deterministic across worker counts."""
        grid = enumerate_candidates(mxu_counts=(2, 4),
                                    cmem_mib_options=(0, 64))
        serial = evaluate_candidates(grid, GRID_APPS, workers=1)
        parallel = evaluate_candidates(grid, GRID_APPS, workers=2)
        assert serial == parallel
        assert pareto_frontier(serial) == pareto_frontier(parallel)
        assert [c.chip.name for c in parallel] == [chip.name for chip in grid]

    def test_parallel_sweep_warms_parent_cache(self):
        grid = enumerate_candidates(mxu_counts=(2,), cmem_mib_options=(64,))
        clear_shared_design_points()
        evaluate_candidates(grid, ("mlp0",), workers=2)
        cache = get_cache()
        clear_shared_design_points()  # force lookups through the cache
        hits_before = cache.stats.hits
        again = evaluate_candidates(grid, ("mlp0",), workers=1)
        assert cache.stats.hits > hits_before
        assert again == evaluate_candidates(grid, ("mlp0",), workers=1)


class TestDseThroughEngine:
    def test_evaluate_candidate_matches_legacy_path(self):
        chip = enumerate_candidates(mxu_counts=(4,),
                                    cmem_mib_options=(64,))[0]
        with engine_disabled():
            clear_shared_design_points()
            legacy = evaluate_candidate(chip, GRID_APPS)
        clear_shared_design_points()
        engined = evaluate_candidate(chip, GRID_APPS)
        assert legacy == engined

    def test_cmem_sweep_serial_equals_parallel(self):
        spec = app_by_name("mlp0")
        capacities = [0, 32 * MIB, 128 * MIB]
        serial = cmem_sweep(spec, capacities, batch=2, workers=1)
        parallel = cmem_sweep(spec, capacities, batch=2, workers=2)
        assert serial == parallel
        assert [c for c, _ in serial] == capacities

    def test_cmem_sweep_rejects_negative_capacity(self):
        spec = app_by_name("mlp0")
        with pytest.raises(ValueError):
            cmem_sweep(spec, [-1], batch=2)
        with pytest.raises(ValueError):
            cmem_sweep(spec, [-1], batch=2, workers=2)

    def test_shared_design_point_is_shared(self):
        clear_shared_design_points()
        assert shared_design_point(TPUV4I) is shared_design_point(TPUV4I)
        other = TPUV4I.variant("other", clock_hz=1e9)
        assert shared_design_point(TPUV4I) is not shared_design_point(other)


class TestSimReentrancy:
    def test_repeated_runs_identical_and_stateless(self):
        spec = app_by_name("cnn0")
        point = DesignPoint(TPUV4I, cache=EvalCache(enabled=False))
        program = point.compiled(spec, 2).program
        sim = TensorCoreSim(TPUV4I)
        first = sim.run(program)
        second = sim.run(program)
        assert first.cycles == second.cycles
        assert first.counters == second.counters
        # No per-run state may leak onto the shared instance.
        assert not hasattr(sim, "_mxu_free")
        assert not hasattr(sim, "_vpu_free")

    def test_interleaved_programs_do_not_interfere(self):
        sim = TensorCoreSim(TPUV4I)
        point = DesignPoint(TPUV4I, cache=EvalCache(enabled=False))
        prog_a = point.compiled(app_by_name("mlp0"), 2).program
        prog_b = point.compiled(app_by_name("cnn0"), 2).program
        baseline_a = sim.run(prog_a).cycles
        sim.run(prog_b)
        assert sim.run(prog_a).cycles == baseline_a


class TestServingPrewarm:
    def test_prewarm_matches_on_demand_latencies(self):
        spec = app_by_name("mlp0")
        simulator = ServingSimulator(
            DesignPoint(TPUV4I), spec,
            BatchPolicy(max_batch=8, max_wait_s=0.001), Slo(0.05))
        grid = simulator.prewarm(workers=1)
        assert set(grid) == set(BatchPolicy.batch_steps(8))
        fresh = ServingSimulator(
            DesignPoint(TPUV4I), spec,
            BatchPolicy(max_batch=8, max_wait_s=0.001), Slo(0.05))
        for step, latency in grid.items():
            assert fresh.batch_latency_s(step) == latency


class TestCachePlumbing:
    def test_export_absorb_round_trip(self):
        source = EvalCache()
        before = source.keys()
        source.put("k1", {"v": 1})
        source.put("k2", (1, 2, 3))
        entries = source.export_since(before)
        assert set(entries) == {"k1", "k2"}
        sink = EvalCache()
        sink.absorb(entries)
        assert sink.get("k1") == {"v": 1}
        assert sink.get("k2") == (1, 2, 3)

    def test_disabled_cache_stores_nothing(self):
        cache = EvalCache(enabled=False)
        cache.put("k", 1)
        assert cache.get("k") is None
        assert cache.entry_count() == 0

    def test_stats_and_describe(self):
        cache = EvalCache()
        cache.put("k", "value")
        assert cache.get("k") == "value"
        assert cache.get("missing") is None
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert 0.0 < cache.stats.hit_rate < 1.0
        assert cache.size_bytes() >= len(pickle.dumps("value"))
        assert "entries" in cache.describe()
