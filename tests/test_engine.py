"""The shared evaluation engine: cache correctness, parallel determinism.

The engine's contract is strict: cached, uncached, serial and parallel
evaluation of the same (chip, compiler, workload, batch, budget) inputs
must produce *identical* records — not approximately equal ones. These
tests assert that, plus the disk tier's round-trip/invalidation behavior
and the simulator reentrancy the process pool relies on.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro.arch.chip import TPUV4I
from repro.compiler.versions import RELEASES
from repro.core.design_point import (
    DesignPoint,
    clear_shared_design_points,
    shared_design_point,
)
from repro.core.dse import (
    cmem_sweep,
    enumerate_candidates,
    evaluate_candidate,
    evaluate_candidates,
    pareto_frontier,
)
from repro.engine import (
    EvalCache,
    ParallelSweeper,
    chip_fingerprint,
    compiler_fingerprint,
    engine_disabled,
    eval_key,
)
from repro.engine.cache import get_cache, set_cache
from repro.serving.batching import BatchPolicy
from repro.serving.server import ServingSimulator
from repro.serving.slo import Slo
from repro.sim.core import TensorCoreSim
from repro.util.units import MIB
from repro.workloads.models import app_by_name

# Small, fast workloads: the contract is about identity, not scale.
GRID_CHIPS = (TPUV4I, TPUV4I.variant("v4i-2mxu", mxus_per_core=2))
GRID_APPS = ("mlp0", "cnn0")
GRID_BATCHES = (1, 8)


def _fields(evaluation):
    return (evaluation.workload, evaluation.chip, evaluation.batch,
            evaluation.latency_s, evaluation.chip_qps,
            evaluation.chip_power_w, evaluation.achieved_tops_chip,
            evaluation.mxu_utilization, evaluation.cmem_hit_fraction)


class TestCacheEquivalence:
    def test_cache_on_off_identical_over_grid(self):
        """Cached and uncached evaluation agree field-for-field."""
        cache = EvalCache()
        off = EvalCache(enabled=False)
        for chip in GRID_CHIPS:
            for app in GRID_APPS:
                spec = app_by_name(app)
                for batch in GRID_BATCHES:
                    uncached = DesignPoint(chip, cache=off).evaluate(
                        spec, batch)
                    cold = DesignPoint(chip, cache=cache).evaluate(spec, batch)
                    # Fresh point, warm cache: must come from the cache.
                    before = cache.stats.hits
                    warm = DesignPoint(chip, cache=cache).evaluate(spec, batch)
                    assert cache.stats.hits > before
                    assert _fields(uncached) == _fields(cold) == _fields(warm)

    def test_sim_results_identical_cache_on_off(self):
        spec = app_by_name("cnn0")
        cache = EvalCache()
        cold = DesignPoint(TPUV4I, cache=cache).run(spec, 4)
        warm = DesignPoint(TPUV4I, cache=cache).run(spec, 4)
        off = DesignPoint(TPUV4I, cache=EvalCache(enabled=False)).run(spec, 4)
        assert cold.cycles == warm.cycles == off.cycles
        assert cold.counters == warm.counters == off.counters

    def test_engine_disabled_context_matches_enabled(self):
        spec = app_by_name("mlp0")
        with engine_disabled():
            legacy = DesignPoint(TPUV4I).evaluate(spec, 4)
        engined = DesignPoint(TPUV4I).evaluate(spec, 4)
        assert _fields(legacy) == _fields(engined)


class TestDiskTier:
    def test_round_trip_across_cache_instances(self, tmp_path):
        spec = app_by_name("mlp0")
        writer = EvalCache(disk_dir=tmp_path)
        first = DesignPoint(TPUV4I, cache=writer).evaluate(spec, 2)
        assert writer.disk_entry_count() > 0
        assert writer.disk_size_bytes() > 0

        # A fresh cache over the same directory = a new process.
        reader = EvalCache(disk_dir=tmp_path)
        second = DesignPoint(TPUV4I, cache=reader).evaluate(spec, 2)
        assert reader.stats.disk_hits >= 1
        assert reader.stats.misses == 0
        assert _fields(first) == _fields(second)

    def test_invalidation_on_chip_and_compiler_change(self, tmp_path):
        spec = app_by_name("mlp0")
        cache = EvalCache(disk_dir=tmp_path)
        DesignPoint(TPUV4I, cache=cache).evaluate(spec, 2)

        # Any chip-field change must miss (key covers every field).
        tweaked = TPUV4I.variant("v4i-fast", clock_hz=TPUV4I.clock_hz * 1.1)
        fresh = EvalCache(disk_dir=tmp_path)
        DesignPoint(tweaked, cache=fresh).evaluate(spec, 2)
        assert fresh.stats.disk_hits == 0
        assert fresh.stats.misses > 0

        # So must a different compiler release.
        fresh2 = EvalCache(disk_dir=tmp_path)
        DesignPoint(TPUV4I, version=RELEASES[0],
                    cache=fresh2).evaluate(spec, 2)
        assert fresh2.stats.disk_hits == 0

    def test_corrupt_disk_entry_is_recomputed(self, tmp_path):
        spec = app_by_name("mlp0")
        cache = EvalCache(disk_dir=tmp_path)
        result = DesignPoint(TPUV4I, cache=cache).evaluate(spec, 2)
        for path in tmp_path.glob("*.pkl"):
            path.write_bytes(b"not a pickle")
        reader = EvalCache(disk_dir=tmp_path)
        again = DesignPoint(TPUV4I, cache=reader).evaluate(spec, 2)
        assert _fields(result) == _fields(again)

    def test_clear_removes_disk_entries(self, tmp_path):
        spec = app_by_name("mlp0")
        cache = EvalCache(disk_dir=tmp_path)
        DesignPoint(TPUV4I, cache=cache).evaluate(spec, 2)
        cache.clear(disk=True)
        assert cache.entry_count() == 0
        assert cache.disk_entry_count() == 0


class TestKeys:
    def test_fingerprints_stable_and_sensitive(self):
        assert chip_fingerprint(TPUV4I) == chip_fingerprint(TPUV4I)
        assert (chip_fingerprint(TPUV4I)
                != chip_fingerprint(TPUV4I.variant("x", clock_hz=1e9)))
        assert (compiler_fingerprint(RELEASES[0])
                != compiler_fingerprint(RELEASES[-1]))

    def test_eval_key_covers_every_input(self):
        chip_fp = chip_fingerprint(TPUV4I)
        comp_fp = compiler_fingerprint(RELEASES[-1])
        base = eval_key("sim", chip_fp, comp_fp, "mlp0", 4, None, "bf16")
        assert base != eval_key("eval", chip_fp, comp_fp, "mlp0", 4,
                                None, "bf16")
        assert base != eval_key("sim", chip_fp, comp_fp, "mlp0", 8,
                                None, "bf16")
        assert base != eval_key("sim", chip_fp, comp_fp, "mlp0", 4,
                                64 * MIB, "bf16")
        assert base != eval_key("sim", chip_fp, comp_fp, "mlp0", 4,
                                None, "int8")
        assert base != eval_key("sim", chip_fp, comp_fp, "cnn0", 4,
                                None, "bf16")

    def test_eval_key_phase_and_kv_bucket(self):
        """Phase/kv-bucket enter the key only when set (legacy bytes)."""
        chip_fp = chip_fingerprint(TPUV4I)
        comp_fp = compiler_fingerprint(RELEASES[-1])
        base = eval_key("sim", chip_fp, comp_fp, "llm0.decode@256", 4,
                        None, "bf16")
        # Explicit None must reproduce the legacy key exactly.
        assert base == eval_key("sim", chip_fp, comp_fp, "llm0.decode@256",
                                4, None, "bf16", phase=None, kv_bucket=None)
        phased = eval_key("sim", chip_fp, comp_fp, "llm0.decode@256", 4,
                          None, "bf16", phase="decode", kv_bucket=256)
        assert phased != base
        assert phased != eval_key("sim", chip_fp, comp_fp, "llm0.decode@256",
                                  4, None, "bf16", phase="prefill",
                                  kv_bucket=256)
        assert phased != eval_key("sim", chip_fp, comp_fp, "llm0.decode@256",
                                  4, None, "bf16", phase="decode",
                                  kv_bucket=512)


def _square(x: int) -> int:
    return x * x


class TestParallelSweeper:
    def test_order_preserving_merge(self):
        items = list(range(23))
        expected = [x * x for x in items]
        assert ParallelSweeper(workers=1).map(_square, items) == expected
        assert ParallelSweeper(workers=2).map(_square, items) == expected
        assert ParallelSweeper(workers=2, chunk_size=3).map(
            _square, items) == expected

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            ParallelSweeper(workers=0)
        with pytest.raises(ValueError):
            ParallelSweeper(chunk_size=0)

    def test_parallel_equals_serial_candidates(self):
        """The pareto_frontier inputs are deterministic across worker counts."""
        grid = enumerate_candidates(mxu_counts=(2, 4),
                                    cmem_mib_options=(0, 64))
        serial = evaluate_candidates(grid, GRID_APPS, workers=1)
        parallel = evaluate_candidates(grid, GRID_APPS, workers=2)
        assert serial == parallel
        assert pareto_frontier(serial) == pareto_frontier(parallel)
        assert [c.chip.name for c in parallel] == [chip.name for chip in grid]

    def test_parallel_sweep_warms_parent_cache(self):
        grid = enumerate_candidates(mxu_counts=(2,), cmem_mib_options=(64,))
        clear_shared_design_points()
        evaluate_candidates(grid, ("mlp0",), workers=2)
        cache = get_cache()
        clear_shared_design_points()  # force lookups through the cache
        hits_before = cache.stats.hits
        again = evaluate_candidates(grid, ("mlp0",), workers=1)
        assert cache.stats.hits > hits_before
        assert again == evaluate_candidates(grid, ("mlp0",), workers=1)


class TestDseThroughEngine:
    def test_evaluate_candidate_matches_legacy_path(self):
        chip = enumerate_candidates(mxu_counts=(4,),
                                    cmem_mib_options=(64,))[0]
        with engine_disabled():
            clear_shared_design_points()
            legacy = evaluate_candidate(chip, GRID_APPS)
        clear_shared_design_points()
        engined = evaluate_candidate(chip, GRID_APPS)
        assert legacy == engined

    def test_cmem_sweep_serial_equals_parallel(self):
        spec = app_by_name("mlp0")
        capacities = [0, 32 * MIB, 128 * MIB]
        serial = cmem_sweep(spec, capacities, batch=2, workers=1)
        parallel = cmem_sweep(spec, capacities, batch=2, workers=2)
        assert serial == parallel
        assert [c for c, _ in serial] == capacities

    def test_cmem_sweep_rejects_negative_capacity(self):
        spec = app_by_name("mlp0")
        with pytest.raises(ValueError):
            cmem_sweep(spec, [-1], batch=2)
        with pytest.raises(ValueError):
            cmem_sweep(spec, [-1], batch=2, workers=2)

    def test_shared_design_point_is_shared(self):
        clear_shared_design_points()
        assert shared_design_point(TPUV4I) is shared_design_point(TPUV4I)
        other = TPUV4I.variant("other", clock_hz=1e9)
        assert shared_design_point(TPUV4I) is not shared_design_point(other)


class TestSimReentrancy:
    def test_repeated_runs_identical_and_stateless(self):
        spec = app_by_name("cnn0")
        point = DesignPoint(TPUV4I, cache=EvalCache(enabled=False))
        program = point.compiled(spec, 2).program
        sim = TensorCoreSim(TPUV4I)
        first = sim.run(program)
        second = sim.run(program)
        assert first.cycles == second.cycles
        assert first.counters == second.counters
        # No per-run state may leak onto the shared instance.
        assert not hasattr(sim, "_mxu_free")
        assert not hasattr(sim, "_vpu_free")

    def test_interleaved_programs_do_not_interfere(self):
        sim = TensorCoreSim(TPUV4I)
        point = DesignPoint(TPUV4I, cache=EvalCache(enabled=False))
        prog_a = point.compiled(app_by_name("mlp0"), 2).program
        prog_b = point.compiled(app_by_name("cnn0"), 2).program
        baseline_a = sim.run(prog_a).cycles
        sim.run(prog_b)
        assert sim.run(prog_a).cycles == baseline_a


class TestServingPrewarm:
    def test_prewarm_matches_on_demand_latencies(self):
        spec = app_by_name("mlp0")
        simulator = ServingSimulator(
            DesignPoint(TPUV4I), spec,
            BatchPolicy(max_batch=8, max_wait_s=0.001), Slo(0.05))
        grid = simulator.prewarm(workers=1)
        assert set(grid) == set(BatchPolicy.batch_steps(8))
        fresh = ServingSimulator(
            DesignPoint(TPUV4I), spec,
            BatchPolicy(max_batch=8, max_wait_s=0.001), Slo(0.05))
        for step, latency in grid.items():
            assert fresh.batch_latency_s(step) == latency


class TestCachePlumbing:
    def test_export_absorb_round_trip(self):
        source = EvalCache()
        before = source.keys()
        source.put("k1", {"v": 1})
        source.put("k2", (1, 2, 3))
        entries = source.export_since(before)
        assert set(entries) == {"k1", "k2"}
        sink = EvalCache()
        sink.absorb(entries)
        assert sink.get("k1") == {"v": 1}
        assert sink.get("k2") == (1, 2, 3)

    def test_disabled_cache_stores_nothing(self):
        cache = EvalCache(enabled=False)
        cache.put("k", 1)
        assert cache.get("k") is None
        assert cache.entry_count() == 0

    def test_stats_and_describe(self):
        cache = EvalCache()
        cache.put("k", "value")
        assert cache.get("k") == "value"
        assert cache.get("missing") is None
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert 0.0 < cache.stats.hit_rate < 1.0
        assert cache.size_bytes() >= len(pickle.dumps("value"))
        assert "entries" in cache.describe()


# Crash-injection tasks must live at module level (picklable). The
# sentinel file makes the crash one-shot: the first worker to see it
# removes it and hard-kills itself, so the retry pool runs clean.
_CRASH_ENV = "REPRO_TEST_CRASH_SENTINEL"


def _consume_crash_sentinel() -> bool:
    sentinel = os.environ.get(_CRASH_ENV)
    if not sentinel:
        return False
    try:
        os.remove(sentinel)
    except FileNotFoundError:
        return False
    return True


def _square_crash_once(x: int) -> int:
    if x == 7 and _consume_crash_sentinel():
        os._exit(1)  # simulate an OOM kill: poisons the whole pool
    return x * x


def _square_in_parent_only(payload: tuple[int, int]) -> int:
    x, parent_pid = payload
    if os.getpid() != parent_pid:
        os._exit(1)  # every pool attempt dies; only serial can finish
    return x * x


def _square_reject_negative(x: int) -> int:
    if x < 0:
        raise ValueError("negative input")
    return x * x


def _cached_square_crash_once(x: int) -> int:
    if x == 5 and _consume_crash_sentinel():
        os._exit(1)
    cache = get_cache()
    key = f"crash-test:{x}"
    hit = cache.get(key)
    if hit is not None:
        return hit
    cache.put(key, x * x)
    return x * x


class TestSweeperCrashTolerance:
    """A dying worker degrades to retry/serial, never to a wrong answer."""

    def test_worker_crash_retried_on_fresh_pool(self, tmp_path, monkeypatch):
        sentinel = tmp_path / "crash-once"
        sentinel.touch()
        monkeypatch.setenv(_CRASH_ENV, str(sentinel))
        items = list(range(23))
        sweeper = ParallelSweeper(workers=2, force_parallel=True)
        assert sweeper.map(_square_crash_once, items) == [x * x for x in items]
        assert not sentinel.exists()  # the crash really happened

    def test_unbroken_pools_fall_back_to_serial(self):
        items = [(x, os.getpid()) for x in range(8)]
        sweeper = ParallelSweeper(workers=2, force_parallel=True,
                                  pool_retries=1)
        assert (sweeper.map(_square_in_parent_only, items)
                == [x * x for x in range(8)])

    def test_task_exceptions_propagate_not_retried(self):
        sweeper = ParallelSweeper(workers=2, force_parallel=True)
        with pytest.raises(ValueError, match="negative"):
            sweeper.map(_square_reject_negative, [1, 2, -3, 4])

    def test_crash_during_map_cached_keeps_cache_consistent(
            self, tmp_path, monkeypatch):
        """Satellite: parallel-with-crash equals serial, cache intact."""
        sentinel = tmp_path / "crash-once"
        sentinel.touch()
        monkeypatch.setenv(_CRASH_ENV, str(sentinel))
        items = list(range(12))
        previous = set_cache(EvalCache())
        try:
            crashed = ParallelSweeper(
                workers=2, force_parallel=True).map_cached(
                    _cached_square_crash_once, items)
            parallel_cache = {k: get_cache().get(k)
                              for k in get_cache().keys()}
            set_cache(EvalCache())
            serial = ParallelSweeper(workers=1).map_cached(
                _cached_square_crash_once, items)
            serial_cache = {k: get_cache().get(k) for k in get_cache().keys()}
        finally:
            set_cache(previous)
        assert not sentinel.exists()
        assert crashed == serial == [x * x for x in items]
        # Every item's entry was merged; no partial records either way.
        assert parallel_cache == serial_cache
        assert set(parallel_cache) == {f"crash-test:{x}" for x in items}

    def test_pool_retries_validated(self):
        with pytest.raises(ValueError):
            ParallelSweeper(pool_retries=-1)


class TestDiskTierIntegrity:
    """Checksummed, atomically-written entries; corruption is never fatal."""

    def test_entries_carry_magic_and_checksum(self, tmp_path):
        cache = EvalCache(disk_dir=tmp_path)
        cache.put("k1", {"v": 42})
        raw = (tmp_path / "k1.pkl").read_bytes()
        assert raw.startswith(b"RPC1")
        assert not list(tmp_path.glob("*.tmp"))  # temp files never linger

    def test_bitflip_quarantined_and_recomputed(self, tmp_path):
        cache = EvalCache(disk_dir=tmp_path)
        cache.put("k1", {"v": 42})
        path = tmp_path / "k1.pkl"
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF  # flip one payload bit
        path.write_bytes(bytes(raw))

        reader = EvalCache(disk_dir=tmp_path)
        assert reader.get("k1") is None  # a miss, not an exception
        assert reader.stats.corrupt == 1
        assert not path.exists()
        assert (tmp_path / "quarantine" / "k1.pkl").exists()
        assert "quarantined" in reader.describe()

        # Recompute-and-store works over the quarantined name.
        reader.put("k1", {"v": 42})
        assert EvalCache(disk_dir=tmp_path).get("k1") == {"v": 42}

    def test_truncated_entry_quarantined(self, tmp_path):
        cache = EvalCache(disk_dir=tmp_path)
        cache.put("k1", [1, 2, 3])
        path = tmp_path / "k1.pkl"
        path.write_bytes(path.read_bytes()[:10])  # torn write, magic intact
        reader = EvalCache(disk_dir=tmp_path)
        assert reader.get("k1") is None
        assert reader.stats.corrupt == 1

    def test_legacy_plain_pickle_still_readable(self, tmp_path):
        (tmp_path / "old.pkl").write_bytes(pickle.dumps(123))
        reader = EvalCache(disk_dir=tmp_path)
        assert reader.get("old") == 123
        assert reader.stats.corrupt == 0

    def test_clear_empties_quarantine(self, tmp_path):
        cache = EvalCache(disk_dir=tmp_path)
        cache.put("k1", "value")
        path = tmp_path / "k1.pkl"
        path.write_bytes(b"RPC1" + b"\x00" * 40)
        assert cache.get("k1") == "value"  # memory tier still serves it
        fresh = EvalCache(disk_dir=tmp_path)
        assert fresh.get("k1") is None
        fresh.clear(disk=True)
        assert not list((tmp_path / "quarantine").iterdir())
