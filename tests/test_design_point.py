"""Tests for DesignPoint and the DSE (E10, E15)."""

import pytest

from repro.arch import TPUV3, TPUV4I
from repro.core import (
    DesignPoint,
    cmem_sweep,
    enumerate_candidates,
    evaluate_candidate,
    pareto_frontier,
)
from repro.util.units import MIB
from repro.workloads import app_by_name


class TestDesignPoint:
    def test_memoization(self, v4i_point):
        spec = app_by_name("cnn0")
        first = v4i_point.run(spec, 4)
        second = v4i_point.run(spec, 4)
        assert first is second

    def test_latency_positive_and_batch_scales(self, v4i_point):
        spec = app_by_name("cnn0")
        lat1 = v4i_point.latency_s(spec, 1)
        lat16 = v4i_point.latency_s(spec, 16)
        assert 0 < lat1 < lat16

    def test_evaluate_fields(self, v4i_point):
        ev = v4i_point.evaluate(app_by_name("bert0"))
        assert ev.chip == "TPUv4i"
        assert ev.chip_qps > 0
        assert 0 < ev.chip_power_w <= TPUV4I.tdp_w
        assert ev.tops_per_watt > 0

    def test_multi_core_chip_multiplies_throughput(self, v3_point):
        spec = app_by_name("cnn0")
        ev = v3_point.evaluate(spec, batch=8)
        single_core_qps = 8 / v3_point.latency_s(spec, 8)
        assert ev.chip_qps == pytest.approx(2 * single_core_qps)

    def test_v4i_beats_v3_on_perf_per_watt(self, v4i_point, v3_point):
        """The headline E8 claim, at the evaluation level."""
        spec = app_by_name("bert0")
        v4i = v4i_point.evaluate(spec)
        v3 = v3_point.evaluate(spec)
        assert v4i.samples_per_joule > 1.5 * v3.samples_per_joule

    def test_max_batch_under_slo(self, v4i_point):
        spec = app_by_name("cnn0")
        tight = v4i_point.max_batch_under_slo(spec, slo_s=0.003)
        loose = v4i_point.max_batch_under_slo(spec, slo_s=0.1)
        assert 0 < tight < loose

    def test_impossible_slo_gives_zero(self, v4i_point):
        assert v4i_point.max_batch_under_slo(app_by_name("cnn0"), 1e-6) == 0

    def test_bad_batch_rejected(self, v4i_point):
        with pytest.raises(ValueError):
            v4i_point.latency_s(app_by_name("cnn0"), 0)


class TestCmemSweep:
    def test_latency_never_worsens_with_capacity(self):
        spec = app_by_name("rnn0")
        sweep = cmem_sweep(spec, [0, 64 * MIB, 128 * MIB])
        latencies = [l for _, l in sweep]
        assert latencies[0] >= latencies[1] >= latencies[2]

    def test_rnn0_gains_substantially(self):
        """The E10 shape: weight-streaming apps love CMEM."""
        spec = app_by_name("rnn0")
        sweep = dict(cmem_sweep(spec, [0, 128 * MIB]))
        assert sweep[0] > 1.4 * sweep[128 * MIB]

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            cmem_sweep(app_by_name("rnn0"), [-1])


class TestDse:
    def test_candidate_grid_size(self):
        grid = enumerate_candidates(mxu_counts=(2, 4), cmem_mib_options=(0, 128))
        assert len(grid) == 4

    def test_more_mxus_more_qps_more_power(self):
        small = evaluate_candidate(
            enumerate_candidates((2,), (128,))[0], app_names=("cnn0",))
        big = evaluate_candidate(
            enumerate_candidates((8,), (128,))[0], app_names=("cnn0",))
        assert big.geomean_qps > small.geomean_qps
        assert big.tdp_estimate_w > small.tdp_estimate_w

    def test_cmem_helps_geomean(self):
        bare = evaluate_candidate(
            enumerate_candidates((4,), (0,))[0], app_names=("rnn0",))
        with_cmem = evaluate_candidate(
            enumerate_candidates((4,), (128,))[0], app_names=("rnn0",))
        assert with_cmem.geomean_qps > bare.geomean_qps

    def test_pareto_frontier_nondominated(self):
        candidates = [evaluate_candidate(c, app_names=("cnn0",))
                      for c in enumerate_candidates((2, 4), (0, 128))]
        frontier = pareto_frontier(candidates, require_air=False)
        assert frontier
        for a in frontier:
            assert not any(b.geomean_qps > a.geomean_qps
                           and b.tdp_estimate_w < a.tdp_estimate_w
                           for b in candidates)

    def test_air_constraint_filters(self):
        candidates = [evaluate_candidate(c, app_names=("cnn0",))
                      for c in enumerate_candidates((16,), (128,))]
        assert pareto_frontier(candidates, require_air=True) == []
