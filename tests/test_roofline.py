"""Tests for the roofline model (E7)."""

import pytest

from repro.arch import TPUV3, TPUV4I
from repro.roofline import Roofline, chip_roofline, place_module
from repro.roofline.model import roofline_curve
from repro.workloads import app_by_name

from tests.conftest import make_tiny_mlp


class TestRoofline:
    def test_ridge_point(self):
        roof = Roofline("r", peak_ops=100.0, bandwidth=10.0)
        assert roof.ridge_ops_per_byte == 10.0

    def test_attainable_below_ridge_is_bandwidth(self):
        roof = Roofline("r", peak_ops=100.0, bandwidth=10.0)
        assert roof.attainable_ops(5.0) == 50.0
        assert roof.is_memory_bound(5.0)

    def test_attainable_above_ridge_is_peak(self):
        roof = Roofline("r", peak_ops=100.0, bandwidth=10.0)
        assert roof.attainable_ops(50.0) == 100.0
        assert not roof.is_memory_bound(50.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Roofline("r", 0, 1)
        with pytest.raises(ValueError):
            Roofline("r", 1, 1).attainable_ops(-1)

    def test_curve_monotone(self):
        roof = Roofline("r", 100.0, 10.0)
        curve = roofline_curve(roof, [0.1, 1.0, 10.0, 100.0])
        values = [v for _, v in curve]
        assert values == sorted(values)


class TestChipRooflines:
    def test_v4i_cmem_roof_above_hbm(self):
        hbm = chip_roofline(TPUV4I, "hbm")
        cmem = chip_roofline(TPUV4I, "cmem")
        assert cmem.ridge_ops_per_byte < hbm.ridge_ops_per_byte
        # At low intensity, CMEM attains far more.
        assert cmem.attainable_ops(10) > 4 * hbm.attainable_ops(10)

    def test_v3_has_no_cmem_roof(self):
        with pytest.raises(ValueError):
            chip_roofline(TPUV3, "cmem")

    def test_unknown_level(self):
        with pytest.raises(ValueError):
            chip_roofline(TPUV4I, "l3")


class TestPlacement:
    def test_mlp_is_memory_bound_cnn_is_not(self):
        mlp = place_module(app_by_name("mlp0").build(32), TPUV4I)
        cnn = place_module(app_by_name("cnn0").build(8), TPUV4I)
        assert mlp.memory_bound_hbm
        assert not cnn.memory_bound_hbm

    def test_cmem_speedup_bound_for_memory_bound_apps(self):
        point = place_module(app_by_name("mlp1").build(32), TPUV4I)
        assert point.cmem_speedup_bound > 1.5

    def test_hit_fraction_blends(self):
        module = make_tiny_mlp(batch=2)
        full = place_module(module, TPUV4I, cmem_hit_fraction=1.0)
        none = place_module(module, TPUV4I, cmem_hit_fraction=0.0)
        assert full.attainable_tops_cmem >= none.attainable_tops_cmem

    def test_hit_fraction_validated(self):
        with pytest.raises(ValueError):
            place_module(make_tiny_mlp(), TPUV4I, cmem_hit_fraction=1.5)

    def test_no_cmem_chip_has_no_cmem_point(self):
        point = place_module(make_tiny_mlp(), TPUV3)
        assert point.attainable_tops_cmem is None
        assert point.cmem_speedup_bound == 1.0
