"""Tests for the DMA engine model."""

import pytest

from repro.arch import DmaEngine, MemorySystem, TPUV4I
from repro.util.units import MIB


@pytest.fixture()
def memory():
    return MemorySystem(TPUV4I)


class TestIssue:
    def test_serializes_on_one_engine(self, memory):
        engine = DmaEngine(memory, "hbm")
        first = engine.issue(1 * MIB, issue_cycle=0)
        second = engine.issue(1 * MIB, issue_cycle=0)
        assert second.start_cycle == first.end_cycle

    def test_idle_engine_starts_at_issue(self, memory):
        engine = DmaEngine(memory, "hbm")
        t = engine.issue(1 * MIB, issue_cycle=1000)
        assert t.start_cycle == 1000

    def test_contention_slows_transfer(self, memory):
        a = DmaEngine(memory, "hbm").issue(4 * MIB, 0, contention=1)
        b = DmaEngine(memory, "hbm").issue(4 * MIB, 0, contention=4)
        assert b.duration > 3 * (a.duration - 64 - TPUV4I.hbm_latency_cycles)

    def test_traffic_recorded(self, memory):
        DmaEngine(memory, "hbm").issue(123, 0)
        assert memory.traffic()["hbm"] == 123

    def test_cmem_faster_than_hbm(self, memory):
        hbm = DmaEngine(memory, "hbm").issue(16 * MIB, 0)
        cmem = DmaEngine(memory, "cmem").issue(16 * MIB, 0)
        assert cmem.duration < hbm.duration

    def test_zero_byte_transfer_costs_overhead_only(self, memory):
        t = DmaEngine(memory, "hbm").issue(0, 0)
        assert t.duration == 64 + TPUV4I.hbm_latency_cycles

    def test_rejects_bad_args(self, memory):
        engine = DmaEngine(memory, "hbm")
        with pytest.raises(ValueError):
            engine.issue(-1, 0)
        with pytest.raises(ValueError):
            engine.issue(1, 0, contention=0)

    def test_unknown_level_rejected_at_construction(self, memory):
        with pytest.raises(KeyError):
            DmaEngine(memory, "l2")


class TestBookkeeping:
    def test_totals(self, memory):
        engine = DmaEngine(memory, "hbm")
        engine.issue(100, 0)
        engine.issue(200, 0)
        assert engine.total_bytes() == 300
        assert engine.busy_cycles() == sum(t.duration for t in engine.completed)

    def test_reset(self, memory):
        engine = DmaEngine(memory, "hbm")
        engine.issue(100, 0)
        engine.reset()
        assert engine.busy_until == 0
        assert engine.total_bytes() == 0
