"""Tests for backwards ML compatibility (Lesson 10, E14)."""

import pytest

from repro.arch import TPUV1, TPUV2, TPUV3, TPUV4I
from repro.mlcompat import check_numerics_match, deployment_readiness


class TestNumericsMatch:
    def test_bf16_bit_exact_v3_to_v4i(self):
        """The lesson's core claim: trainer and server agree on bits."""
        check = check_numerics_match(TPUV3, TPUV4I, "bf16")
        assert check.bit_exact
        assert check.est_quality_loss_pct == 0.0
        assert check.deployable_without_validation

    def test_bf16_bit_exact_v2_to_v4i(self):
        assert check_numerics_match(TPUV2, TPUV4I, "bf16").bit_exact

    def test_int8_path_needs_calibration(self):
        check = check_numerics_match(TPUV3, TPUV4I, "int8")
        assert not check.bit_exact
        assert check.needs_calibration
        assert not check.deployable_without_validation
        assert check.est_quality_loss_pct >= 0.0

    def test_int8_snr_finite(self):
        check = check_numerics_match(TPUV3, TPUV4I, "int8")
        assert 10 < check.snr_db < 60

    def test_tpuv1_target_cannot_run_bf16(self):
        with pytest.raises(ValueError):
            check_numerics_match(TPUV3, TPUV1, "bf16")

    def test_deterministic_given_seed(self):
        a = check_numerics_match(TPUV3, TPUV4I, "int8", seed=1)
        b = check_numerics_match(TPUV3, TPUV4I, "int8", seed=1)
        assert a.snr_db == b.snr_db


class TestReadiness:
    def test_summary_counts(self):
        checks = [check_numerics_match(TPUV3, TPUV4I, "bf16"),
                  check_numerics_match(TPUV3, TPUV4I, "int8")]
        summary = deployment_readiness(checks)
        assert summary["models"] == 2
        assert summary["deploy_as_is"] == 1
        assert summary["need_calibration"] == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            deployment_readiness([])
