"""Tests for the memory hierarchy model."""

import pytest

from repro.arch import MemorySystem, TPUV1, TPUV3, TPUV4I
from repro.arch.memory import MemoryLevel
from repro.util.units import GIB, MIB


class TestLevels:
    def test_v4i_has_three_levels(self):
        names = [l.name for l in MemorySystem(TPUV4I).levels()]
        assert names == ["vmem", "cmem", "hbm"]

    def test_v3_has_no_cmem(self):
        mem = MemorySystem(TPUV3)
        assert [l.name for l in mem.levels()] == ["vmem", "hbm"]
        with pytest.raises(KeyError):
            mem.level("cmem")

    def test_cmem_faster_than_hbm(self):
        mem = MemorySystem(TPUV4I)
        assert mem.cmem.bandwidth > 3 * mem.hbm.bandwidth
        assert mem.cmem.latency_cycles < mem.hbm.latency_cycles

    def test_level_validation(self):
        with pytest.raises(ValueError):
            MemoryLevel("x", 0, 1.0, 1)
        with pytest.raises(ValueError):
            MemoryLevel("x", 1, -1.0, 1)


class TestTransferTiming:
    def test_zero_bytes_zero_cycles(self):
        assert MemorySystem(TPUV4I).stream_cycles("hbm", 0) == 0

    def test_includes_latency(self):
        mem = MemorySystem(TPUV4I)
        assert mem.stream_cycles("hbm", 1) >= TPUV4I.hbm_latency_cycles

    def test_bandwidth_scaling(self):
        mem = MemorySystem(TPUV4I)
        small = mem.stream_cycles("hbm", 1 * MIB)
        large = mem.stream_cycles("hbm", 64 * MIB)
        assert large > 10 * (small - TPUV4I.hbm_latency_cycles)

    def test_transfer_seconds(self):
        mem = MemorySystem(TPUV4I)
        secs = mem.hbm.transfer_seconds(TPUV4I.hbm_bw)  # 1 second of traffic
        assert secs == pytest.approx(1.0)


class TestPlacement:
    def test_weights_prefer_cmem(self):
        mem = MemorySystem(TPUV4I)
        assert mem.weight_home(64 * MIB) == "cmem"

    def test_oversized_weights_go_to_hbm(self):
        mem = MemorySystem(TPUV4I)
        assert mem.weight_home(512 * MIB) == "hbm"

    def test_reservation_displaces(self):
        mem = MemorySystem(TPUV4I)
        assert mem.weight_home(100 * MIB, reserved_cmem=64 * MIB) == "hbm"

    def test_no_cmem_chip_goes_to_hbm(self):
        assert MemorySystem(TPUV3).weight_home(1 * MIB) == "hbm"

    def test_weights_bigger_than_hbm_rejected(self):
        mem = MemorySystem(TPUV4I)
        with pytest.raises(ValueError):
            mem.weight_home(100 * GIB)


class TestTrafficLedger:
    def test_records_and_resets(self):
        mem = MemorySystem(TPUV4I)
        mem.record_traffic("hbm", 100)
        mem.record_traffic("hbm", 50)
        mem.record_traffic("cmem", 10)
        assert mem.traffic()["hbm"] == 150
        assert mem.traffic()["cmem"] == 10
        mem.reset_traffic()
        assert all(v == 0 for v in mem.traffic().values())

    def test_unknown_level_rejected(self):
        with pytest.raises(KeyError):
            MemorySystem(TPUV1).record_traffic("cmem", 10)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            MemorySystem(TPUV4I).record_traffic("hbm", -1)
