"""Semantic equivalence of composite expansion, checked by execution.

The expansion pass rewrites softmax/layernorm into primitives; these
tests run both forms through the functional evaluator with identical
tensors and demand (near-)identical outputs — the strongest correctness
check a compiler pass can get.
"""

import numpy as np
import pytest

from repro.compiler import expand_composites
from repro.graph import GraphBuilder, Shape, evaluate_module
from repro.numerics import snr_db


class TestSoftmaxExpansion:
    def test_bit_exact_fp32(self):
        b = GraphBuilder("sm")
        x = b.parameter(Shape((8, 128)), "x")
        b.softmax(x)
        module = b.build()
        expanded = expand_composites(module)
        ref = evaluate_module(module, "fp32", seed=1)
        got = evaluate_module(expanded, "fp32", seed=1)
        assert np.array_equal(ref, got)

    def test_rows_still_sum_to_one_in_bf16(self):
        b = GraphBuilder("sm")
        x = b.parameter(Shape((4, 64)), "x")
        b.softmax(x)
        expanded = expand_composites(b.build())
        out = evaluate_module(expanded, "bf16", seed=2)
        assert np.allclose(out.sum(axis=-1), 1.0, atol=0.02)

    def test_3d_softmax_expands(self):
        b = GraphBuilder("sm3")
        x = b.parameter(Shape((2, 4, 32)), "x")
        b.softmax(x)
        expanded = expand_composites(b.build())
        ref = evaluate_module(b.module, "fp32", seed=3)
        got = evaluate_module(expanded, "fp32", seed=3)
        assert snr_db(ref, got) > 120


class TestLayernormExpansion:
    def _modules(self):
        b = GraphBuilder("ln")
        x = b.parameter(Shape((8, 128)), "x")
        b.layernorm(x, "ln0")
        module = b.build()
        return module, expand_composites(module)

    def test_matches_reference_with_unit_affine(self):
        module, expanded = self._modules()
        identity = {
            "ln0.gamma": np.ones(128, dtype=np.float32),
            "ln0.beta": np.zeros(128, dtype=np.float32),
        }
        ref = evaluate_module(module, "fp32", seed=1)
        got = evaluate_module(expanded, "fp32", seed=1, weights=identity)
        assert snr_db(ref, got) > 60  # only the epsilon placement differs

    def test_expansion_output_is_normalized(self):
        _, expanded = self._modules()
        identity = {
            "ln0.gamma": np.ones(128, dtype=np.float32),
            "ln0.beta": np.zeros(128, dtype=np.float32),
        }
        out = evaluate_module(expanded, "fp32", seed=4, weights=identity)
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-3)
        assert np.allclose(out.std(axis=-1), 1.0, atol=0.05)

    def test_gamma_beta_apply(self):
        _, expanded = self._modules()
        affine = {
            "ln0.gamma": np.full(128, 2.0, dtype=np.float32),
            "ln0.beta": np.full(128, 3.0, dtype=np.float32),
        }
        out = evaluate_module(expanded, "fp32", seed=4, weights=affine)
        assert out.mean() == pytest.approx(3.0, abs=0.05)
        assert out.std() == pytest.approx(2.0, abs=0.1)


class TestBroadcastOp:
    def test_broadcast_repeats_trailing_axis(self):
        b = GraphBuilder("bc")
        x = b.parameter(Shape((4,)), "x")
        b.module.add("broadcast", Shape((4, 8)), (x,))
        out = evaluate_module(b.module, "fp32",
                              inputs={"x": np.arange(4, dtype=np.float32)})
        assert out.shape == (4, 8)
        assert np.all(out[2] == 2.0)

    def test_scale_op(self):
        b = GraphBuilder("sc")
        x = b.parameter(Shape((4,)), "x")
        b.module.add("scale", x.shape, (x,), factor=0.25)
        out = evaluate_module(b.module, "fp32",
                              inputs={"x": np.full(4, 8.0, dtype=np.float32)})
        assert np.allclose(out, 2.0)
