"""Tests for the inter-chip interconnect model."""

import pytest

from repro.arch import IciLink, IciNetwork, TPUV1, TPUV4I
from repro.util.units import GIGA, MIB


class TestLink:
    def test_transfer_time(self):
        link = IciLink(bandwidth=100 * GIGA, latency_s=1e-6)
        assert link.transfer_seconds(100 * GIGA) == pytest.approx(1.0, rel=1e-4)

    def test_latency_floor(self):
        link = IciLink(bandwidth=100 * GIGA, latency_s=1e-6)
        assert link.transfer_seconds(0) == pytest.approx(1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            IciLink(0)
        with pytest.raises(ValueError):
            IciLink(1.0).transfer_seconds(-1)


class TestLinkValidation:
    """Named-value rejection of NaN/zero/negative parameters (the
    FaultModel error-message convention, extended to the interconnect)."""

    def test_nan_bandwidth_rejected(self):
        with pytest.raises(ValueError, match="bandwidth must not be NaN"):
            IciLink(float("nan"))

    def test_zero_bandwidth_names_the_value(self):
        with pytest.raises(ValueError,
                           match="bandwidth must be positive, got 0"):
            IciLink(0)

    def test_negative_bandwidth_names_the_value(self):
        with pytest.raises(ValueError,
                           match=r"bandwidth must be positive, got -3\.0"):
            IciLink(-3.0)

    def test_nan_latency_rejected(self):
        with pytest.raises(ValueError, match="latency_s must not be NaN"):
            IciLink(1.0, latency_s=float("nan"))

    def test_negative_latency_names_the_value(self):
        with pytest.raises(ValueError,
                           match=r"latency_s must be non-negative, got -1"):
            IciLink(1.0, latency_s=-1e-6)

    def test_zero_latency_allowed(self):
        assert IciLink(1.0, latency_s=0.0).transfer_seconds(2) == 2.0

    def test_nan_bytes_rejected(self):
        with pytest.raises(ValueError, match="bytes must not be NaN"):
            IciLink(1.0).transfer_seconds(float("nan"))

    def test_negative_bytes_names_the_value(self):
        with pytest.raises(ValueError,
                           match="bytes must be non-negative, got -1"):
            IciLink(1.0).transfer_seconds(-1)


class TestNetwork:
    def test_single_chip_free(self):
        net = IciNetwork(TPUV4I, 1)
        assert net.all_reduce_seconds(1 * MIB) == 0.0
        assert net.point_to_point_seconds(1 * MIB) == 0.0

    def test_tpuv1_cannot_form_rings(self):
        with pytest.raises(ValueError):
            IciNetwork(TPUV1, 2)
        assert IciNetwork(TPUV1, 1).num_chips == 1

    def test_all_reduce_scales_with_bytes(self):
        net = IciNetwork(TPUV4I, 4)
        assert net.all_reduce_seconds(64 * MIB) > net.all_reduce_seconds(1 * MIB)

    def test_all_reduce_steps(self):
        """Ring all-reduce moves 2(p-1)/p of the payload per link."""
        net = IciNetwork(TPUV4I, 4)
        payload = 64 * MIB
        expected = 6 * (1e-6 + (payload / 4) / TPUV4I.ici_link_bw)
        assert net.all_reduce_seconds(payload) == pytest.approx(expected)

    def test_hops_validated(self):
        net = IciNetwork(TPUV4I, 4)
        with pytest.raises(ValueError):
            net.point_to_point_seconds(1024, hops=3)  # max is 2 on a 4-ring

    def test_sharding(self):
        net = IciNetwork(TPUV4I, 4)
        assert net.sharded_weight_bytes(100) == 25
        assert net.sharded_weight_bytes(101) == 26

    def test_all_gather(self):
        net = IciNetwork(TPUV4I, 4)
        assert net.all_gather_seconds(1 * MIB) == pytest.approx(
            3 * (1e-6 + 1 * MIB / TPUV4I.ici_link_bw))

    def test_num_chips_validated(self):
        with pytest.raises(ValueError):
            IciNetwork(TPUV4I, 0)
