"""Fastserve replay kernels: bit-identity against the event loops.

The contract under test is absolute: with ``REPRO_FASTSERVE`` on (the
default), :func:`repro.serving.fastserve.replay_serving` and
:func:`replay_cluster` must reproduce the reference event loops'
returned stats **byte for byte** — same floats, same counters, same
tracer spans — on every scenario the chaos sweep exercises: faultless,
replica kills, mid-batch kills, transient slowdowns, overload shedding,
hedging, and dtype degradation tiers, across all four chip generations.
Plus the satellites that ride along: the env/context opt-out gating,
the shared-compile regression for identical replicas, float-typed
latency stats, the bare-timestamp request API, and the vectorized
Poisson generator's parity with the scalar loop it replaced.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import GENERATIONS, TPUV4I
from repro.cluster import ClusterPolicy, ClusterSimulator, DegradationTier
from repro.cluster.sweep import chaos_sweep
from repro.core.design_point import DesignPoint
from repro.engine.cache import EvalCache, set_cache
from repro.faults import FaultModel, FaultSchedule
from repro.serving import (BatchPolicy, ServingSimulator, Slo,
                           clear_fastserve, fastserve_disabled,
                           fastserve_enabled, fastserve_stats)
from repro.util.rng import DeterministicRng
from repro.workloads import Request, RequestGenerator, app_by_name

FLAT_TABLE = {step: 0.001 for step in BatchPolicy.batch_steps(8)}


def make_sim(point, *, max_batch=8, max_wait_s=0.002, table=FLAT_TABLE):
    spec = app_by_name("cnn0")
    sim = ServingSimulator(point, spec, BatchPolicy(max_batch, max_wait_s),
                           Slo(spec.slo_ms / 1e3))
    sim.seed_latencies(table)
    return sim


def make_replicas(point, count, **kwargs):
    return [make_sim(point, **kwargs) for _ in range(count)]


def kill_schedule(cores, horizon_s=10.0, start_s=0.0, end_s=math.inf):
    return FaultSchedule(cores, horizon_s,
                         down=[(core, start_s, end_s)
                               for core in range(cores)])


def slowdown_schedule(cores, horizon_s=10.0, factor=20.0):
    return FaultSchedule(cores, horizon_s,
                         slowdowns=[(core, 0.0, horizon_s, factor)
                                    for core in range(cores)])


@pytest.fixture(scope="module")
def traffic():
    return RequestGenerator(7).poisson("cnn0", 2000.0, 0.5)


def serving_both_ways(sim_factory, requests, **kwargs):
    """Run one serving scenario fast and cold on fresh simulators."""
    fast = sim_factory().simulate(requests, **kwargs)
    with fastserve_disabled():
        cold = sim_factory().simulate(requests, **kwargs)
    return fast, cold


def cluster_both_ways(cluster_factory, requests, **kwargs):
    fast = cluster_factory().simulate(requests, **kwargs)
    with fastserve_disabled():
        cold = cluster_factory().simulate(requests, **kwargs)
    return fast, cold


class TestServingIdentity:
    """replay_serving vs the single-simulator event loop."""

    @pytest.mark.parametrize("chip", GENERATIONS, ids=lambda c: c.name)
    def test_faultless_identity_per_generation(self, chip):
        point = DesignPoint(chip)
        requests = RequestGenerator(11).poisson("cnn0", 1500.0, 0.3)
        fast, cold = serving_both_ways(lambda: make_sim(point), requests)
        assert fast == cold  # frozen dataclass: bit-level equality

    def test_mid_batch_kill_identity(self, v4i_point, traffic):
        # Outage opens mid-run with batches in flight: the kernel must
        # cut a segment boundary and carry the survivors across it.
        cores = v4i_point.chip.cores
        schedule = kill_schedule(cores, start_s=0.05, end_s=0.2)
        fast, cold = serving_both_ways(lambda: make_sim(v4i_point),
                                       traffic, schedule=schedule)
        assert fast == cold
        assert fast.lost_batches > 0  # the scenario really bit

    def test_permanent_kill_identity(self, v4i_point, traffic):
        schedule = kill_schedule(v4i_point.chip.cores, start_s=0.1)
        fast, cold = serving_both_ways(lambda: make_sim(v4i_point),
                                       traffic, schedule=schedule)
        assert fast == cold
        assert fast.dropped_requests > 0

    def test_slowdown_identity(self, v4i_point, traffic):
        schedule = slowdown_schedule(v4i_point.chip.cores)
        fast, cold = serving_both_ways(lambda: make_sim(v4i_point),
                                       traffic, schedule=schedule)
        assert fast == cold
        assert fast.p99_s > FLAT_TABLE[1]  # slowdown visible in the tail

    def test_seeded_fault_model_identity(self, v4i_point, traffic):
        model = FaultModel(seed=7, core_mtbf_s=0.05, core_repair_s=0.02)
        fast, cold = serving_both_ways(lambda: make_sim(v4i_point),
                                       traffic, faults=model)
        assert fast == cold

    def test_overload_identity(self, v4i_point):
        # 10x the queue's drain rate: deep queues, constant max batches.
        requests = RequestGenerator(3).poisson("cnn0", 50000.0, 0.1)
        fast, cold = serving_both_ways(lambda: make_sim(v4i_point), requests)
        assert fast == cold
        assert fast.mean_batch > 7.9  # queue really ran deep


class TestClusterIdentity:
    """replay_cluster vs the router event loop, scenario by scenario."""

    @pytest.mark.parametrize("chip", GENERATIONS, ids=lambda c: c.name)
    def test_resilient_faultless_identity_per_generation(self, chip):
        point = DesignPoint(chip)
        requests = RequestGenerator(9).poisson("cnn0", 3000.0, 0.3)
        policy = ClusterPolicy.resilient(
            slo_limit_s=0.005, offered_qps=3000.0, max_batch=8, replicas=3,
            int8_tier=False)
        fast, cold = cluster_both_ways(
            lambda: ClusterSimulator(make_replicas(point, 3), policy),
            requests)
        assert fast == cold

    def test_kill_one_identity(self, v4i_point, traffic):
        cores = v4i_point.chip.cores
        policy = ClusterPolicy.resilient(
            slo_limit_s=0.005, offered_qps=2000.0, max_batch=8, replicas=3,
            int8_tier=False)
        fast, cold = cluster_both_ways(
            lambda: ClusterSimulator(make_replicas(v4i_point, 3), policy),
            traffic, schedules=[kill_schedule(cores), None, None])
        assert fast == cold
        assert fast.ejections >= 1

    def test_mid_batch_kill_identity(self, v4i_point, traffic):
        cores = v4i_point.chip.cores
        policy = ClusterPolicy.resilient(
            slo_limit_s=0.005, offered_qps=2000.0, max_batch=8, replicas=3,
            int8_tier=False)
        fast, cold = cluster_both_ways(
            lambda: ClusterSimulator(make_replicas(v4i_point, 3), policy),
            traffic,
            schedules=[kill_schedule(cores, start_s=0.05, end_s=0.2),
                       None, None])
        assert fast == cold

    def test_slowdown_identity(self, v4i_point, traffic):
        cores = v4i_point.chip.cores
        policy = ClusterPolicy.resilient(
            slo_limit_s=0.005, offered_qps=2000.0, max_batch=8, replicas=3,
            int8_tier=False)
        fast, cold = cluster_both_ways(
            lambda: ClusterSimulator(make_replicas(v4i_point, 3), policy),
            traffic, schedules=[slowdown_schedule(cores), None, None])
        assert fast == cold

    def test_overload_shedding_identity(self, v4i_point):
        # 2.5x the admitted rate: the token bucket must shed, and the
        # shed set must match the reference request for request.
        requests = RequestGenerator(5).poisson("cnn0", 5000.0, 0.3)
        policy = ClusterPolicy.resilient(
            slo_limit_s=0.005, offered_qps=2000.0, max_batch=8, replicas=3,
            int8_tier=False)
        fast, cold = cluster_both_ways(
            lambda: ClusterSimulator(make_replicas(v4i_point, 3), policy),
            requests)
        assert fast == cold
        assert fast.shed_requests > 0

    def test_hedging_identity(self, v4i_point):
        # One crawling replica so hedges fire, win, and cancel copies.
        cores = v4i_point.chip.cores
        slow = FaultSchedule(
            cores, 10.0,
            slowdowns=[(core, 0.0, 10.0, 50.0) for core in range(cores)])
        requests = RequestGenerator(3).poisson("cnn0", 1000.0, 0.3)
        policy = ClusterPolicy(probe_interval_s=0.01,
                               hedge_delay_s=0.005)
        fast, cold = cluster_both_ways(
            lambda: ClusterSimulator(make_replicas(v4i_point, 2), policy),
            requests, schedules=[slow, None])
        assert fast == cold
        assert fast.hedged_requests > 0
        assert fast.cancelled_hedges + fast.wasted_hedges > 0

    def test_degradation_tier_identity(self, v4i_point):
        cores = v4i_point.chip.cores
        policy = ClusterPolicy(
            probe_interval_s=0.005, unhealthy_after=2, ejection_s=1.0,
            tiers=(DegradationTier("half", max_batch=4),),
            degrade_below_healthy=0.67, degrade_after=2, recover_after=4)
        requests = RequestGenerator(5).poisson("cnn0", 3000.0, 0.4)
        fast, cold = cluster_both_ways(
            lambda: ClusterSimulator(make_replicas(v4i_point, 3), policy),
            requests, schedules=[kill_schedule(cores),
                                 kill_schedule(cores), None])
        assert fast == cold
        assert fast.degraded_s > 0.0

    def test_no_probe_stranded_queue_identity(self, v4i_point, traffic):
        # Without probing a dead replica is discovered lazily and its
        # queue dropped — the lazy-discovery order must match exactly.
        cores = v4i_point.chip.cores
        fast, cold = cluster_both_ways(
            lambda: ClusterSimulator(make_replicas(v4i_point, 2)),
            traffic, schedules=[kill_schedule(cores, start_s=0.1), None])
        assert fast == cold
        assert fast.dropped_requests > 0

    def test_tracer_spans_identical(self, v4i_point, traffic):
        from repro.obs.tracer import SpanTracer
        policy = ClusterPolicy.resilient(
            slo_limit_s=0.005, offered_qps=2000.0, max_batch=8, replicas=2,
            int8_tier=False)

        def run():
            tracer = SpanTracer()
            ClusterSimulator(make_replicas(v4i_point, 2), policy).simulate(
                traffic, tracer=tracer)
            return tracer.spans

        fast = run()
        with fastserve_disabled():
            cold = run()
        assert fast == cold


class TestChaosSweepIdentity:
    def test_every_scenario_row_identical(self):
        fast = chaos_sweep(seed=3, chips=(TPUV4I,), duration_s=0.25)
        with fastserve_disabled():
            cold = chaos_sweep(seed=3, chips=(TPUV4I,), duration_s=0.25)
        assert len(fast) == len(cold)
        for f, c in zip(fast, cold):
            assert f == c, f"{f.scenario}/{f.policy} diverged"
        # All five scenarios really ran under both policies.
        assert {(r.scenario, r.policy) for r in fast} == {
            (s, p) for s in ("faultless", "kill-1", "chip-outages",
                             "slowdowns", "overload")
            for p in ("static", "resilient")}

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_identity_property_over_seeds(self, seed):
        point = DesignPoint(TPUV4I)
        requests = RequestGenerator(seed).poisson("cnn0", 2500.0, 0.2)
        if not requests:
            return
        model = FaultModel(seed=seed, chip_mtbf_s=0.1, chip_repair_s=0.05,
                           slowdown_mtbf_s=0.15)
        policy = ClusterPolicy.resilient(
            slo_limit_s=0.005, offered_qps=2500.0, max_batch=8, replicas=3,
            int8_tier=False)
        fast, cold = cluster_both_ways(
            lambda: ClusterSimulator(make_replicas(point, 3), policy),
            requests, faults=model)
        assert fast == cold


class TestGating:
    def test_env_var_disables_kernels(self, monkeypatch):
        monkeypatch.delenv("REPRO_FASTSERVE", raising=False)
        assert fastserve_enabled()
        monkeypatch.setenv("REPRO_FASTSERVE", "0")
        assert not fastserve_enabled()
        monkeypatch.setenv("REPRO_FASTSERVE", "off")
        assert not fastserve_enabled()
        monkeypatch.setenv("REPRO_FASTSERVE", "1")
        assert fastserve_enabled()

    def test_context_manager_nests(self, monkeypatch):
        monkeypatch.setenv("REPRO_FASTSERVE", "1")
        assert fastserve_enabled()
        with fastserve_disabled():
            assert not fastserve_enabled()
            with fastserve_disabled():
                assert not fastserve_enabled()
            assert not fastserve_enabled()
        assert fastserve_enabled()

    def test_stats_count_fast_path_only(self, v4i_point, traffic,
                                        monkeypatch):
        monkeypatch.setenv("REPRO_FASTSERVE", "1")
        clear_fastserve()
        make_sim(v4i_point).simulate(traffic)
        assert fastserve_stats().replays == 1
        assert fastserve_stats().batches > 0
        with fastserve_disabled():
            make_sim(v4i_point).simulate(traffic)
        assert fastserve_stats().replays == 1  # cold path left no marks
        ClusterSimulator(make_replicas(v4i_point, 2)).simulate(traffic)
        assert fastserve_stats().cluster_replays == 1
        clear_fastserve()
        assert fastserve_stats().replays == 0


class TestSharedCompiles:
    def test_one_compile_per_unique_dtype_step(self, v4i_point, monkeypatch):
        # Identical replicas must share one retargeted compile per
        # (chip, app, dtype, step) through the eval cache — never one
        # per replica — and a second cluster build must compile nothing.
        import repro.compiler.pipeline as pipeline
        calls = []
        real = pipeline.compile_model

        def counting(module, chip, **kwargs):
            calls.append(module.name)
            return real(module, chip, **kwargs)

        monkeypatch.setattr(pipeline, "compile_model", counting)
        previous = set_cache(EvalCache())
        try:
            spec = app_by_name("cnn0")
            policy = ClusterPolicy(
                probe_interval_s=0.005, unhealthy_after=1, ejection_s=1.0,
                tiers=(DegradationTier("int8", max_batch=4, dtype="int8"),),
                degrade_below_healthy=0.6, degrade_after=1, recover_after=99)

            def build():
                return ClusterSimulator.homogeneous(
                    v4i_point, spec, BatchPolicy(8, 0.002),
                    Slo(spec.slo_ms / 1e3), 3, policy)

            cluster = build()
            tables = cluster._tier_tables()
            steps = BatchPolicy.batch_steps(8)
            assert len(calls) == len(steps)  # one per step, not per replica
            assert all(t == tables[0] for t in tables)
            # Homogeneous replicas share one latency memo object too.
            sims = cluster.replica_sims
            assert all(s._latency_cache is sims[0]._latency_cache
                       for s in sims)
            calls.clear()
            build()._tier_tables()  # hits the eval cache: zero compiles
            assert calls == []
        finally:
            set_cache(previous)


class TestStatsTypes:
    def test_all_latency_stats_are_floats(self, v4i_point, traffic):
        stats = make_sim(v4i_point).simulate(traffic)
        for field in ("duration_s", "p50_s", "p95_s", "p99_s", "mean_batch",
                      "throughput_qps", "slo_violation_fraction",
                      "availability", "lost_capacity_fraction"):
            assert type(getattr(stats, field)) is float, field
        cstats = ClusterSimulator(make_replicas(v4i_point, 2)).simulate(
            traffic)
        for field in ("duration_s", "p50_s", "p95_s", "p99_s",
                      "availability", "slo_violation_fraction"):
            assert type(getattr(cstats, field)) is float, field
        for rep in cstats.replica_stats:
            assert type(rep.p99_s) is float

    def test_percentile_sorted_matches_percentile(self):
        from repro.serving import percentile, percentile_sorted
        values = [0.004, 0.001, 0.009, 0.002, 0.007, 0.003]
        ordered = sorted(values)
        for q in (1, 50, 95, 99, 100):
            assert percentile_sorted(ordered, q) == percentile(values, q)


class TestFloatRequestApi:
    def test_serving_accepts_bare_timestamps(self, v4i_point, traffic):
        arrivals = [r.arrival_s for r in traffic]
        sim_objects = make_sim(v4i_point).simulate(traffic)
        sim_floats = make_sim(v4i_point).simulate(arrivals)
        assert sim_objects == sim_floats

    def test_cluster_accepts_bare_timestamps(self, v4i_point, traffic):
        arrivals = [r.arrival_s for r in traffic]
        a = ClusterSimulator(make_replicas(v4i_point, 2)).simulate(traffic)
        b = ClusterSimulator(make_replicas(v4i_point, 2)).simulate(arrivals)
        assert a == b

    def test_unsorted_timestamps_rejected(self, v4i_point):
        with pytest.raises(ValueError, match="sorted"):
            make_sim(v4i_point).simulate([0.2, 0.1])

    def test_generator_objects_carry_bulk_arrivals(self):
        requests = RequestGenerator(7).poisson("cnn0", 2000.0, 0.1)
        assert all(isinstance(r, Request) for r in requests)
        assert all(r.tenant == "cnn0" for r in requests)
        arrivals = [r.arrival_s for r in requests]
        assert arrivals == sorted(arrivals)


class TestPoissonParity:
    """Vectorized poisson_arrivals vs the scalar loop it replaced."""

    @pytest.mark.parametrize("rate,duration", [
        (2000.0, 0.5),      # well inside one chunk
        (100.0, 0.001),     # empty stream
        (5000.0, 2.0),      # crosses chunk boundaries (4096-gap chunks)
    ])
    def test_values_and_state_match_scalar_loop(self, rate, duration):
        rng = DeterministicRng(17)
        fast = rng.poisson_arrivals(rate, duration)
        ref = DeterministicRng(17)
        mean = 1.0 / rate
        arrivals, now = [], 0.0
        while True:
            now += ref.exponential(mean)
            if now >= duration:
                break
            arrivals.append(now)
        assert fast == arrivals  # same floats, bit for bit
        # ...and the generator stream continues from the same point, so
        # later draws (the next sweep scenario) are unchanged too.
        assert rng.uniform() == ref.uniform()

    def test_consecutive_streams_unchanged(self):
        # Two scenarios drawn back-to-back from one generator must see
        # the same stream split as two scalar-loop scenarios would.
        fast = DeterministicRng(23)
        a = fast.poisson_arrivals(3000.0, 0.3)
        b = fast.poisson_arrivals(7500.0, 0.3)  # 2.5x overload scenario
        ref = DeterministicRng(23)
        for expected, (rate, duration) in ((a, (3000.0, 0.3)),
                                           (b, (7500.0, 0.3))):
            mean = 1.0 / rate
            arrivals, now = [], 0.0
            while True:
                now += ref.exponential(mean)
                if now >= duration:
                    break
                arrivals.append(now)
            assert expected == arrivals

    def test_numpy_stream_element_order(self):
        # The vectorized fill consumes the bit stream element-wise in
        # order — the property the rewind logic depends on.
        gen = np.random.default_rng(5)
        block = gen.exponential(1.0, 8)
        gen2 = np.random.default_rng(5)
        singles = [gen2.exponential(1.0) for _ in range(8)]
        assert block.tolist() == singles
