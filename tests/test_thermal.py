"""Tests for the transient thermal / throttling model."""

import pytest

from repro.arch import AIR_COOLING, LIQUID_COOLING, TPUV4I
from repro.arch.thermal import (
    RECOVERY_TEMP_C,
    THROTTLE_TEMP_C,
    ThermalModel,
)


@pytest.fixture()
def air_model():
    return ThermalModel(TPUV4I, cooling=AIR_COOLING)


class TestSteadyState:
    def test_v4i_never_throttles_on_air(self, air_model):
        """Lesson 8's design point: 175 W sustains full clock on air."""
        assert air_model.sustained_frequency_factor(175.0) == 1.0

    def test_hot_design_throttles_on_air(self, air_model):
        assert air_model.sustained_frequency_factor(320.0) < 0.9

    def test_liquid_never_throttles_these_powers(self):
        model = ThermalModel(TPUV4I, cooling=LIQUID_COOLING)
        for power in (175.0, 320.0, 450.0):
            assert model.sustained_frequency_factor(power) == 1.0

    def test_sustained_factor_monotone_in_power(self, air_model):
        factors = [air_model.sustained_frequency_factor(p)
                   for p in (150, 250, 350, 450)]
        assert factors == sorted(factors, reverse=True)

    def test_power_at_frequency_cubic(self, air_model):
        full = air_model.power_at_frequency(175.0, 1.0)
        half = air_model.power_at_frequency(175.0, 0.5)
        dynamic = 175.0 - TPUV4I.idle_w
        assert full == pytest.approx(175.0)
        assert half == pytest.approx(TPUV4I.idle_w + dynamic / 8)

    def test_validation(self, air_model):
        with pytest.raises(ValueError):
            air_model.power_at_frequency(100.0, 0.0)
        with pytest.raises(ValueError):
            air_model.sustained_frequency_factor(-1.0)
        with pytest.raises(ValueError):
            ThermalModel(TPUV4I, time_constant_s=0)


class TestTransient:
    def test_temperature_rises_toward_steady_state(self, air_model):
        samples = air_model.simulate([175.0] * 300, dt_s=0.1)
        assert samples[0].junction_c < samples[-1].junction_c
        steady = air_model.steady_junction_c(175.0)
        assert samples[-1].junction_c == pytest.approx(steady, abs=1.0)

    def test_cool_start_runs_full_speed(self, air_model):
        samples = air_model.simulate([175.0] * 10, dt_s=0.1)
        assert all(s.freq_factor == 1.0 for s in samples)

    def test_hot_design_throttles_then_recovers(self):
        chip = TPUV4I.variant("hot", tdp_w=320.0, cooling="liquid")
        model = ThermalModel(chip, cooling=AIR_COOLING)
        trace = [320.0] * 600 + [chip.idle_w] * 600
        samples = model.simulate(trace, dt_s=0.1)
        assert any(s.throttled for s in samples[:600])
        assert not samples[-1].throttled  # recovered during the idle tail
        assert max(s.junction_c for s in samples) < THROTTLE_TEMP_C + 10

    def test_governor_hysteresis(self):
        """Between recovery and throttle temps, frequency holds steady."""
        assert RECOVERY_TEMP_C < THROTTLE_TEMP_C

    def test_delivered_fraction(self, air_model):
        samples = air_model.simulate([175.0] * 50, dt_s=0.1)
        assert ThermalModel.delivered_fraction(samples) == 1.0
        with pytest.raises(ValueError):
            ThermalModel.delivered_fraction([])

    def test_bad_trace_rejected(self, air_model):
        with pytest.raises(ValueError):
            air_model.simulate([-5.0])
        with pytest.raises(ValueError):
            air_model.simulate([100.0], dt_s=0)
