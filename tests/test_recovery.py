"""Tests for checkpointed KV recovery in continuous batching (ISSUE 10).

Covers the snapshot cost model (lowered-IR DMA rows whose bytes land in
the HBM/host traffic ledger at exactly the KV-cache footprint), the
zero-checkpoint zero-fault bit-identity contract (explicitly and as a
hypothesis seed property), delta re-prefill after a mid-step kill
(snapshot restore, TTFT preservation, recompute counting), sequence
migration off permanently dead cores under the retry budget/timeout,
goodput accounting invariants, and the chaos sweep's determinism.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import GENERATIONS, TPUV3, TPUV4I
from repro.core.design_point import shared_design_point
from repro.faults.model import FaultModel, FaultSchedule
from repro.serving import (
    BatchPolicy,
    ContinuousBatchingSimulator,
    ContinuousStats,
    DEFAULT_HOST_LINK,
    HOST_LEVEL,
    RecoveryPolicy,
    llm_chaos_sweep,
    snapshot_latency_table,
    snapshot_lowered,
    snapshot_replay,
    snapshot_seconds,
)
from repro.workloads import GenRequest, generative_by_name, \
    sample_gen_requests

LLM0 = generative_by_name("llm0")

#: Synthetic step latencies: prefill 4 ms, decode 1 ms, snapshot 0.5 ms.
PREFILL_S = 0.004
DECODE_S = 0.001
SNAPSHOT_S = 0.0005


def make_sim(chip=TPUV4I, slots=None, recovery=None, spec=LLM0):
    """A simulator with synthetic seeded latencies for every phase."""
    sim = ContinuousBatchingSimulator(
        shared_design_point(chip), spec, slots=slots, recovery=recovery)
    table = {}
    for bucket in spec.prompt_buckets:
        table[("prefill", bucket, 1)] = PREFILL_S
    for bucket in spec.kv_buckets:
        for step in BatchPolicy.batch_steps(sim.slots):
            table[("decode", bucket, step)] = DECODE_S
            table[("snapshot", bucket, step)] = SNAPSHOT_S
    sim.seed_latencies(table)
    return sim


class TestRecoveryPolicy:
    def test_defaults_do_nothing(self):
        policy = RecoveryPolicy()
        assert not policy.checkpointing
        assert policy.migrate
        assert policy.host_link == DEFAULT_HOST_LINK

    def test_validation_named_values(self):
        with pytest.raises(ValueError, match="checkpoint_every.*-1"):
            RecoveryPolicy(checkpoint_every=-1)
        with pytest.raises(ValueError, match="checkpoint_every"):
            RecoveryPolicy(checkpoint_every=2.5)
        with pytest.raises(ValueError, match="checkpoint_every"):
            RecoveryPolicy(checkpoint_every=True)

    def test_describe(self):
        assert "never" in RecoveryPolicy().describe()
        assert "every 8 tokens" in RecoveryPolicy(
            checkpoint_every=8).describe()


class TestSnapshotPricing:
    def test_ledger_bytes_match_kv_footprint(self):
        """Snapshot bytes flow through the replay's traffic ledger:
        the HBM read and the host write each move exactly the model's
        KV-cache footprint (halved on int8-only TPUv1)."""
        for chip in GENERATIONS:
            point = shared_design_point(chip)
            result = snapshot_replay(point, LLM0, 256, 2)
            ledger = dict(result.counters.bytes_by_level)
            expected = LLM0.kv_cache_bytes(256, 2)
            if not chip.supports_dtype("bf16"):
                expected //= 2  # int8 KV elements
            assert ledger["hbm"] == expected, chip.name
            assert ledger[HOST_LEVEL] == expected, chip.name
            assert result.seconds > 0

    def test_cost_grows_with_bucket_and_batch(self):
        point = shared_design_point(TPUV4I)
        assert (snapshot_seconds(point, LLM0, 256, 1)
                > snapshot_seconds(point, LLM0, 128, 1))
        assert (snapshot_seconds(point, LLM0, 128, 4)
                > snapshot_seconds(point, LLM0, 128, 1))

    def test_host_pool_appended_once(self):
        lowered = snapshot_lowered(TPUV4I, LLM0, 128, 1)
        assert lowered.pool_levels.count(HOST_LEVEL) == 1
        assert HOST_LEVEL in lowered.level_names
        # The chip's real pools are preserved in lower_program's order.
        assert lowered.pool_levels[:-1] == ("cmem", "hbm")

    def test_slower_host_link_costs_more(self):
        point = shared_design_point(TPUV4I)
        from repro.arch.ici import IciLink
        fast = snapshot_seconds(point, LLM0, 256, 1,
                                host_link=IciLink(64e9, 1e-6))
        slow = snapshot_seconds(point, LLM0, 256, 1,
                                host_link=IciLink(4e9, 1e-6))
        assert slow > fast

    def test_table_covers_buckets_and_steps(self):
        point = shared_design_point(TPUV4I)
        table = snapshot_latency_table(point, LLM0, 8)
        expected = {("snapshot", b, s) for b in LLM0.kv_buckets
                    for s in BatchPolicy.batch_steps(8)}
        assert set(table) == expected
        assert all(v > 0 for v in table.values())

    def test_validation(self):
        with pytest.raises(ValueError, match="kv_bucket"):
            snapshot_lowered(TPUV4I, LLM0, 0, 1)
        with pytest.raises(ValueError, match="batch"):
            snapshot_lowered(TPUV4I, LLM0, 128, 0)


class TestZeroCheckpointIdentity:
    def test_explicit_identity(self):
        plain = make_sim(TPUV3)
        zero = make_sim(TPUV3, recovery=RecoveryPolicy(checkpoint_every=0))
        reqs = sample_gen_requests(LLM0, seed=7, rate_qps=600,
                                   duration_s=0.5)
        assert plain.simulate(reqs) == zero.simulate(reqs)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_seed_property_zero_fault_zero_ckpt_identical(self, seed):
        """For ANY traffic seed, zero-fault + zero-checkpoint continuous
        batching is bit-identical to the faultless plain path — whether
        the zero-fault configuration arrives as an all-infinite-MTBF
        FaultModel, an empty schedule, or a do-nothing RecoveryPolicy."""
        reqs = sample_gen_requests(LLM0, seed=seed, rate_qps=400,
                                   duration_s=0.4)
        plain = make_sim(TPUV3)
        baseline = plain.simulate(reqs)
        assert plain.simulate(reqs, faults=FaultModel()) == baseline
        assert plain.simulate(
            reqs, schedule=FaultSchedule(2, 1.0)) == baseline
        zero = make_sim(TPUV3, recovery=RecoveryPolicy(checkpoint_every=0))
        assert zero.simulate(reqs) == baseline
        assert baseline.goodput_fraction == 1.0
        assert baseline.tokens_computed == baseline.tokens_generated

    def test_migrate_off_matches_no_policy_under_faults(self):
        """checkpoint_every=0 + migrate=False executes the exact PR 9
        fault path: same drops, same floats, even under a permanent
        outage plus repairable kills."""
        schedule = FaultSchedule(
            2, 3.0, down=[(0, 0.02, 0.05), (1, 0.1, math.inf)])
        reqs = sample_gen_requests(LLM0, seed=3, rate_qps=600,
                                   duration_s=0.5)
        plain = make_sim(TPUV3)
        off = make_sim(TPUV3, recovery=RecoveryPolicy(
            checkpoint_every=0, migrate=False))
        assert (plain.simulate(reqs, schedule=schedule)
                == off.simulate(reqs, schedule=schedule))


class TestCheckpointedRecovery:
    def test_snapshot_cadence(self):
        """Zero faults, checkpoint every 2 tokens: snapshots happen on
        the cadence, cost time (slower run), and change no outcome —
        goodput stays exactly 1.0."""
        plain = make_sim().simulate([GenRequest(0.0, 10, 9)])
        ckpt = make_sim(recovery=RecoveryPolicy(checkpoint_every=2))
        stats = ckpt.simulate([GenRequest(0.0, 10, 9)])
        assert stats.served_requests == 1
        assert stats.snapshot_steps == 4  # at produced 2, 4, 6, 8
        assert stats.snapshots == 4
        assert stats.goodput_fraction == 1.0
        assert stats.duration_s == pytest.approx(
            plain.duration_s + 4 * SNAPSHOT_S)

    def test_delta_reprefill_resumes_from_snapshot(self):
        """Kill a sequence after its snapshot: it restores (one restore
        step, no second prefill), recomputes only the uncovered suffix,
        and keeps its original TTFT."""
        # prefill [0,4ms) -> produced 1; decode [4,5) -> 2; snapshot
        # [5,5.5) snap=2; decode [5.5,6.5) -> 3; decode [6.5,7.5) -> 4;
        # kill inside [6.5,7.5): produced 4 -> lost to snap=2, suffix 2.
        sim = make_sim(recovery=RecoveryPolicy(checkpoint_every=2))
        schedule = FaultSchedule(1, 1.0, down=[(0, 0.007, 0.010)])
        stats = sim.simulate([GenRequest(0.0, 10, 6)], schedule=schedule)
        assert stats.served_requests == 1
        assert stats.lost_steps == 1
        assert stats.retried_requests == 1
        assert stats.prefill_steps == 1      # no scratch re-prefill
        assert stats.restore_steps == 1
        assert stats.recovered_tokens == 2   # snapshot coverage reused
        # Recomputed: decode had reached 4 when killed (the [6.5,7.5)
        # step never committed), so the suffix past the snapshot is 1.
        assert stats.recomputed_tokens == 1
        # TTFT is the original prefill completion, not the retry's.
        assert stats.ttft_p99_s == pytest.approx(PREFILL_S)
        assert stats.tokens_computed == stats.tokens_generated + 1
        assert 0 < stats.goodput_fraction < 1

    def test_scratch_baseline_reprefills(self):
        """A mid-step kill without a policy re-prefills from scratch and
        recomputes the whole lost prefix."""
        # Without snapshot steps the decode grid is 4, 5, 6, 7 ms; kill
        # at 6.2 ms voids the step that would have committed token 4.
        sim = make_sim()
        schedule = FaultSchedule(1, 1.0, down=[(0, 0.0062, 0.010)])
        stats = sim.simulate([GenRequest(0.0, 10, 6)], schedule=schedule)
        assert stats.served_requests == 1
        assert stats.prefill_steps == 2
        assert stats.restore_steps == 0
        assert stats.recovered_tokens == 0
        assert stats.recomputed_tokens == 3  # positions 1..3 replayed
        # The retry's prefill resets TTFT (first token re-streamed late).
        assert stats.ttft_p99_s > PREFILL_S

    def test_kill_before_any_snapshot_restarts_from_scratch(self):
        """A policy can only resume what a snapshot covered: a kill
        during the first decode step falls back to scratch re-prefill
        even with checkpointing enabled."""
        sim = make_sim(recovery=RecoveryPolicy(checkpoint_every=4))
        schedule = FaultSchedule(1, 1.0, down=[(0, 0.0045, 0.010)])
        stats = sim.simulate([GenRequest(0.0, 10, 3)], schedule=schedule)
        assert stats.served_requests == 1
        assert stats.prefill_steps == 2
        assert stats.restore_steps == 0
        assert stats.recovered_tokens == 0

    def test_goodput_improves_under_seeded_kills(self):
        reqs = sample_gen_requests(LLM0, seed=3, rate_qps=600,
                                   duration_s=1.0)
        faults = FaultModel(seed=9, core_mtbf_s=0.2, core_repair_s=0.02,
                            retry_budget=4)
        scratch = make_sim(TPUV3).simulate(reqs, faults=faults)
        ckpt = make_sim(TPUV3, recovery=RecoveryPolicy(
            checkpoint_every=4)).simulate(reqs, faults=faults)
        assert scratch.lost_steps > 0
        assert ckpt.recovered_tokens > 0
        assert ckpt.goodput_fraction > scratch.goodput_fraction

    def test_goodput_accounting_invariant(self):
        with pytest.raises(ValueError, match="goodput accounting"):
            ContinuousStats(
                workload="llm0", chip="TPUv4i", requests=1, duration_s=1.0,
                ttft_p50_s=0.0, ttft_p99_s=0.0, per_token_p50_s=0.0,
                per_token_p99_s=0.0, tokens_generated=10, prefill_steps=1,
                decode_steps=9, mean_decode_batch=1.0, tokens_per_s=10.0,
                ttft_violation_fraction=0.0,
                per_token_violation_fraction=0.0, tokens_computed=5)

    def test_goodput_defaults_derive(self):
        stats = ContinuousStats(
            workload="llm0", chip="TPUv4i", requests=1, duration_s=1.0,
            ttft_p50_s=0.0, ttft_p99_s=0.0, per_token_p50_s=0.0,
            per_token_p99_s=0.0, tokens_generated=10, prefill_steps=1,
            decode_steps=9, mean_decode_batch=1.0, tokens_per_s=10.0,
            ttft_violation_fraction=0.0, per_token_violation_fraction=0.0)
        assert stats.tokens_computed == 10
        assert stats.wasted_tokens == 0
        assert stats.goodput_fraction == 1.0


class TestMigration:
    def outage(self, death_s=0.05):
        """Core 1 of two dies permanently at ``death_s``."""
        return FaultSchedule(2, 3.0, down=[(1, death_s, math.inf)])

    def test_pending_requests_migrate_to_survivor(self):
        """With migration, a dead core's substream reroutes instead of
        dropping; every request is still served exactly once."""
        reqs = [GenRequest(0.01 * i, 10, 4) for i in range(20)]
        scratch = make_sim(TPUV3).simulate(reqs, schedule=self.outage())
        assert scratch.dropped_requests > 0  # PR 9 drops the substream
        migrated = make_sim(TPUV3, recovery=RecoveryPolicy(
            checkpoint_every=4)).simulate(reqs, schedule=self.outage())
        assert migrated.served_requests == 20
        assert migrated.dropped_requests == 0
        assert migrated.migrated_requests > 0
        assert (migrated.served_requests + migrated.dropped_requests
                == migrated.requests)

    def test_migrants_not_served_before_death(self):
        """A migrated request cannot complete before the core death that
        freed it — survivors see migrants only from the death instant."""
        death = 0.0102
        reqs = [GenRequest(0.001 * i, 10, 2) for i in range(8)]
        stats = make_sim(TPUV3, slots=1, recovery=RecoveryPolicy(
            checkpoint_every=4)).simulate(reqs, schedule=self.outage(death))
        assert stats.served_requests == 8
        assert stats.migrated_requests > 0
        # The dying core's requests finish after the death instant.
        assert stats.duration_s + reqs[0].arrival_s >= death

    def test_retry_budget_gates_active_migrants(self):
        """An active sequence at death migrates only when one more retry
        is admissible; with a zero budget it drops (the satellite fix:
        the budget — not the outage — decides)."""
        reqs = [GenRequest(0.0, 10, 32), GenRequest(0.0, 10, 32)]
        zero_budget = FaultModel(retry_budget=0)
        stats = make_sim(TPUV3, recovery=RecoveryPolicy(
            checkpoint_every=4)).simulate(
                reqs, faults=zero_budget, schedule=self.outage(0.01))
        # One request per core: core 1's active sequence is dropped
        # (budget exhausted), core 0's is untouched.
        assert stats.dropped_requests == 1
        assert stats.served_requests == 1
        assert stats.migrated_requests == 0

    def test_retry_timeout_gates_migrants(self):
        reqs = [GenRequest(0.0, 10, 32), GenRequest(0.0, 10, 32)]
        timeout = FaultModel(retry_budget=4, retry_timeout_s=0.005)
        stats = make_sim(TPUV3, recovery=RecoveryPolicy(
            checkpoint_every=4)).simulate(
                reqs, faults=timeout, schedule=self.outage(0.02))
        assert stats.dropped_requests == 1
        assert stats.served_requests == 1

    def test_no_survivors_drops_like_pr9(self):
        """A single-core chip has nowhere to migrate: the policy keeps
        the PR 9 drop semantics and conservation holds."""
        schedule = FaultSchedule(1, 1.0, down=[(0, 0.001, math.inf)])
        reqs = [GenRequest(0.0, 10, 5), GenRequest(0.2, 10, 5)]
        stats = make_sim(recovery=RecoveryPolicy(
            checkpoint_every=4)).simulate(reqs, schedule=schedule)
        assert stats.dropped_requests == 2
        assert stats.served_requests == 0
        assert stats.migrated_requests == 0

    def test_snapshot_covered_sequence_migrates_with_progress(self):
        """A snapshot taken before the core death travels with the
        migrant: the survivor restores it instead of re-prefilling."""
        # Slots=1, one deep request per core; core 1 dies at 12 ms:
        # after prefill (4) + decodes at 5,6 + snapshot at 6.5 (snap=2)
        # + more decodes. The migrant resumes from snap=2 on core 0.
        reqs = [GenRequest(0.0, 10, 24), GenRequest(0.0, 10, 24)]
        stats = make_sim(TPUV3, slots=1, recovery=RecoveryPolicy(
            checkpoint_every=2)).simulate(
                reqs, faults=FaultModel(retry_budget=4),
                schedule=self.outage(0.012))
        assert stats.served_requests == 2
        assert stats.migrated_requests == 1
        assert stats.restore_steps == 1
        assert stats.recovered_tokens > 0


class TestConservationProperty:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           every=st.sampled_from([0, 1, 3, 8]),
           budget=st.integers(min_value=0, max_value=3))
    def test_requests_conserved_under_chaos(self, seed, every, budget):
        """requests == served + dropped under every chaos scenario —
        kills, slowdowns, and a permanent death — for any checkpoint
        cadence and retry budget (the ContinuousStats constructor
        enforces it; completing simulate() IS the assertion)."""
        reqs = sample_gen_requests(LLM0, seed=seed, rate_qps=500,
                                   duration_s=0.4)
        if not reqs:
            return
        horizon = reqs[-1].arrival_s + 1.0
        faults = FaultModel(seed=seed + 1, core_mtbf_s=0.1,
                            core_repair_s=0.02, slowdown_mtbf_s=0.2,
                            retry_budget=budget)
        schedule = faults.schedule(2, horizon)
        # Overlay a permanent death so migration paths are exercised.
        schedule = FaultSchedule(
            2, horizon,
            down=tuple(schedule.down) + ((1, horizon / 3, math.inf),),
            slowdowns=schedule.slowdowns)
        recovery = (RecoveryPolicy(checkpoint_every=every)
                    if every else None)
        stats = make_sim(TPUV3, recovery=recovery).simulate(
            reqs, faults=faults, schedule=schedule)
        assert stats.requests == len(reqs)
        assert (stats.served_requests + stats.dropped_requests
                == stats.requests)
        assert stats.tokens_computed >= stats.tokens_generated
        assert 0.0 < stats.goodput_fraction <= 1.0


class TestChaosSweep:
    def test_deterministic_and_shaped(self):
        first = llm_chaos_sweep(seed=2, models=("llm0",), chips=(TPUV3,),
                                duration_s=0.3, checkpoint_every=6)
        repeat = llm_chaos_sweep(seed=2, models=("llm0",), chips=(TPUV3,),
                                 duration_s=0.3, checkpoint_every=6)
        assert first == repeat
        assert len(first) == 6  # 3 scenarios x 2 policies
        assert {r.scenario for r in first} == {"faultless", "kill",
                                               "outage"}
        assert {r.policy for r in first} == {"scratch", "ckpt6"}
        for row in first:
            assert row.stats.requests == (row.stats.served_requests
                                          + row.stats.dropped_requests)

    def test_faultless_scratch_matches_plain_sweep_goodput(self):
        rows = llm_chaos_sweep(seed=2, models=("llm0",), chips=(TPUV3,),
                               duration_s=0.3)
        faultless = {r.policy: r.stats for r in rows
                     if r.scenario == "faultless"}
        assert faultless["scratch"].goodput_fraction == 1.0
        assert faultless["ckpt8"].goodput_fraction == 1.0
        assert faultless["ckpt8"].snapshot_steps > 0

    def test_checkpoint_every_validated(self):
        with pytest.raises(ValueError, match="checkpoint_every"):
            llm_chaos_sweep(checkpoint_every=0)


class TestGoodputReport:
    def test_render_mentions_every_bucket(self):
        from repro.obs import goodput_report
        stats = ContinuousStats(
            workload="llm0", chip="TPUv3", requests=10, duration_s=1.0,
            ttft_p50_s=0.0, ttft_p99_s=0.0, per_token_p50_s=0.0,
            per_token_p99_s=0.0, tokens_generated=90, prefill_steps=10,
            decode_steps=80, mean_decode_batch=2.0, tokens_per_s=90.0,
            ttft_violation_fraction=0.0, per_token_violation_fraction=0.0,
            tokens_computed=100, recomputed_tokens=10, recovered_tokens=6,
            migrated_requests=2, snapshots=5, snapshot_steps=3,
            restore_steps=2)
        text = goodput_report(stats)
        assert "goodput" in text
        assert "90" in text and "100" in text
        assert "recovered" in text
        assert "migrated" in text

    def test_obs_counters_record_recovery(self):
        from repro.obs import collecting_metrics
        with collecting_metrics() as reg:
            sim = make_sim(TPUV3, recovery=RecoveryPolicy(
                checkpoint_every=2))
            schedule = FaultSchedule(2, 3.0, down=[(1, 0.02, math.inf)])
            sim.simulate([GenRequest(0.001 * i, 10, 8) for i in range(10)],
                         schedule=schedule)
            snap = reg.snapshot()
        assert snap["continuous.requests"]["value"] == 10
        assert snap["continuous.migrated"]["value"] > 0
        assert snap["continuous.snapshots"]["value"] > 0
        assert snap["continuous.tokens_computed"]["value"] > 0
