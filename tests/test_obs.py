"""Observability layer: metrics registry, span tracer, reports.

The load-bearing contracts:

* disabled observability is *invisible* — simulation, serving and cache
  results are bit-identical with the registry off and on;
* traces are deterministic — two identical runs export byte-identical
  Chrome JSON, and every timestamp comes from a simulated clock;
* the traced replay is bit-identical to the untraced fast path.
"""

import json

import pytest

from repro.arch import TPUV4I
from repro.compiler import compile_model
from repro.engine.cache import EvalCache
from repro.engine.lowered import lowered_program
from repro.engine.modules import built_module
from repro.obs import (
    MetricsRegistry,
    SpanTracer,
    build_trace,
    collecting_metrics,
    diff_snapshots,
    metrics,
    profile_result,
    render_snapshot,
    replay_traced,
    spans_from_interpreter_trace,
    tier_report,
)
from repro.sim.lowered import FastReplay
from repro.workloads import RequestGenerator, app_by_name


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry(enabled=True)
        reg.count("c")
        reg.count("c", 2)
        reg.set_gauge("g", 7.5)
        for value in (0.5, 3.0, 100.0):
            reg.observe("h", value)
        snap = reg.snapshot()
        assert snap["c"]["value"] == 3
        assert snap["g"]["value"] == 7.5
        assert snap["h"]["count"] == 3
        assert snap["h"]["min"] == 0.5 and snap["h"]["max"] == 100.0

    def test_disabled_registry_records_nothing(self):
        reg = MetricsRegistry(enabled=False)
        reg.count("c")
        reg.observe("h", 1.0)
        reg.set_gauge("g", 1.0)
        with reg.timer("t"):
            pass
        assert reg.snapshot() == {}
        assert reg.op_count == 0

    def test_histogram_bucketing(self):
        reg = MetricsRegistry(enabled=True)
        hist = reg.histogram("h", (1, 10, 100))
        for value in (0.5, 5, 50, 500):
            hist.observe(value)
        snap = hist.as_dict()
        # One observation per bucket: <=1, <=10, <=100, overflow.
        assert list(snap["buckets"].values()) == [1, 1, 1, 1]

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            MetricsRegistry(enabled=True).histogram("h", (1, 1, 2))
        with pytest.raises(ValueError):
            MetricsRegistry(enabled=True).histogram("h2", ())

    def test_type_mismatch_rejected(self):
        reg = MetricsRegistry(enabled=True)
        reg.count("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_timer_accumulates_wall_time(self):
        reg = MetricsRegistry(enabled=True)
        with reg.timer("t"):
            pass
        with reg.timer("t"):
            pass
        assert reg.snapshot()["t"]["value"] >= 0.0

    def test_collecting_metrics_restores_previous(self):
        before = metrics()
        with collecting_metrics() as reg:
            assert metrics() is reg
            assert reg.enabled
            reg.count("inside")
        assert metrics() is before
        assert not metrics().enabled

    def test_diff_snapshots(self):
        reg = MetricsRegistry(enabled=True)
        reg.count("c", 5)
        reg.set_gauge("g", 1.0)
        before = reg.snapshot()
        reg.count("c", 3)
        reg.set_gauge("g", 9.0)
        delta = diff_snapshots(reg.snapshot(), before)
        assert delta["c"]["value"] == 3
        assert delta["g"]["value"] == 9.0  # gauges are levels, not flows

    def test_render_snapshot(self):
        reg = MetricsRegistry(enabled=True)
        reg.count("c", 2)
        reg.observe("h", 1.0)
        text = render_snapshot(reg.snapshot())
        assert "c" in text and "h" in text


class TestDisabledPathIdentity:
    """With the registry off (the default), results never change."""

    def _serve(self, point):
        from repro.serving import BatchPolicy, ServingSimulator, Slo

        spec = app_by_name("cnn0")
        server = ServingSimulator(point, spec,
                                  BatchPolicy(max_batch=4, max_wait_s=0.001),
                                  Slo(spec.slo_ms / 1e3))
        requests = RequestGenerator(3).poisson(spec.name, 2000.0, 0.05)
        return server.simulate(requests)

    def test_serving_stats_identical_on_off(self, v4i_point):
        assert not metrics().enabled
        baseline = self._serve(v4i_point)
        with collecting_metrics() as reg:
            instrumented = self._serve(v4i_point)
            assert reg.op_count > 0  # the instrumentation did fire
        assert instrumented == baseline

    def test_design_point_run_identical_on_off(self):
        from repro.core import DesignPoint

        spec = app_by_name("mlp0")
        off = DesignPoint(TPUV4I, cache=EvalCache()).run(spec, 4)
        with collecting_metrics():
            on = DesignPoint(TPUV4I, cache=EvalCache()).run(spec, 4)
        assert on.cycles == off.cycles
        assert on.counters == off.counters
        assert on.report == off.report

    def test_fault_schedule_identical_on_off(self):
        from repro.faults import FaultModel

        model = FaultModel(seed=5, core_mtbf_s=0.2, slowdown_mtbf_s=0.4)
        off = model.schedule(4, 2.0)
        with collecting_metrics() as reg:
            on = model.schedule(4, 2.0)
            snap = reg.snapshot()
        assert on == off
        assert snap["faults.schedules"]["value"] == 1
        assert snap["faults.core_outages"]["value"] == len(
            [d for d in off.down]) - snap["faults.chip_outages"]["value"] * 4

    def test_cache_counters_report(self):
        from repro.core import DesignPoint

        spec = app_by_name("mlp0")
        with collecting_metrics() as reg:
            point = DesignPoint(TPUV4I, cache=EvalCache())
            point.run(spec, 4)
            DesignPoint(TPUV4I, cache=point._engine_cache()).run(spec, 4)
            snap = reg.snapshot()
        assert snap["engine.cache.misses"]["value"] == 1
        assert snap["engine.cache.hits"]["value"] == 1
        assert snap["tier.compile_s"]["value"] > 0
        assert snap["tier.sim_s"]["value"] > 0


class TestTracedReplay:
    def _lowered(self, app="mlp0", batch=4):
        spec = app_by_name(app)
        compiled = compile_model(built_module(spec, batch), TPUV4I)
        return lowered_program(compiled.program, TPUV4I)

    def test_bit_identical_to_fast_replay(self):
        low = self._lowered()
        reference = FastReplay(TPUV4I).run(low)
        traced, tracer = replay_traced(low, TPUV4I)
        assert traced.cycles == reference.cycles
        assert traced.counters == reference.counters
        assert traced.report == reference.report
        assert len(tracer.spans) > 0

    def test_spans_cover_simulated_time(self):
        low = self._lowered()
        result, tracer = replay_traced(low, TPUV4I)
        horizon_us = result.seconds * 1e6
        for span in tracer.spans:
            assert span.ts_us >= 0.0
            assert span.end_us <= horizon_us * (1 + 1e-9)

    def test_matches_interpreter_trace_spans(self):
        from repro.sim import TensorCoreSim

        spec = app_by_name("mlp0")
        compiled = compile_model(built_module(spec, 4), TPUV4I)
        sim = TensorCoreSim(TPUV4I)
        interp = sim.run_interpreted(compiled.program, trace=True)
        spans = spans_from_interpreter_trace(interp.trace, TPUV4I.clock_hz)
        assert spans  # the interpreter path is traceable too


class TestSpanTracer:
    def test_capacity_truncates_silently(self):
        tracer = SpanTracer(capacity=2)
        for index in range(5):
            tracer.record(f"s{index}", "cat", "g", "t", float(index), 1.0)
        assert len(tracer.spans) == 2
        assert tracer.truncated

    def test_chrome_trace_structure(self):
        tracer = SpanTracer()
        tracer.record("a", "compute", "core", "mxu", 0.0, 2.0,
                      (("cycles", 10),))
        tracer.record("b", "compute", "core", "vpu", 2.0, 1.0)
        trace = tracer.chrome_trace()
        events = trace["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["args"]["name"] for e in meta} == {"core", "mxu", "vpu"}
        assert len(complete) == 2
        assert complete[0]["args"] == {"cycles": 10}
        # Distinct tracks get distinct thread ids inside one process.
        assert complete[0]["pid"] == complete[1]["pid"]
        assert complete[0]["tid"] != complete[1]["tid"]

    def test_export_is_byte_stable(self):
        def build():
            tracer = SpanTracer()
            tracer.record("a", "c", "g", "t", 0.0, 1.0, (("k", "v"),))
            return tracer.export_json()

        first, second = build(), build()
        assert first == second
        assert json.loads(first)["otherData"]["truncated"] is False


class TestBuildTrace:
    @pytest.fixture(scope="class")
    def traced(self):
        return build_trace(app_by_name("mlp0"), TPUV4I, batch=4,
                           serve=True, serve_duration_s=0.05)

    def test_export_deterministic(self, traced):
        again = build_trace(app_by_name("mlp0"), TPUV4I, batch=4,
                            serve=True, serve_duration_s=0.05)
        assert traced.tracer.export_json() == again.tracer.export_json()

    def test_all_groups_present(self, traced):
        groups = {span.group for span in traced.tracer.spans}
        assert groups == {"pipeline", "core", "serving"}

    def test_pipeline_phases_ordered(self, traced):
        phases = traced.tracer.by_group("pipeline")
        names = [s.name for s in phases]
        assert names == ["compile", "lower", "replay", "serve"]
        for earlier, later in zip(phases, phases[1:]):
            assert later.ts_us == pytest.approx(earlier.end_us)

    def test_summary_matches_result(self, traced):
        summary = traced.summary_dict()
        assert summary["cycles"] == traced.result.cycles
        assert summary["spans"] == len(traced.tracer.spans)

    def test_serve_spans_on_core_tracks(self, traced):
        serving = traced.tracer.by_group("serving")
        assert serving
        assert all(s.track.startswith("core") for s in serving)


class TestReports:
    def test_profile_result_fractions(self, v4i_point):
        result = v4i_point.run(app_by_name("mlp0"), 4)
        profile = profile_result(result)
        assert profile.cycles == result.cycles
        assert 0.0 < profile.mxu_fraction <= 1.0
        assert 0.0 <= profile.other_fraction <= 1.0
        assert "mxu busy" in profile.render()

    def test_tier_report_attributes_time(self):
        snapshot = {
            "tier.compile_s": {"type": "counter", "value": 3.0},
            "tier.sim_s": {"type": "counter", "value": 1.0},
            "engine.cache.hits": {"type": "counter", "value": 2},
            "engine.cache.disk_hits": {"type": "counter", "value": 0},
            "engine.cache.misses": {"type": "counter", "value": 2},
        }
        text = tier_report(snapshot)
        assert "75.0%" in text
        assert "50% hit rate" in text

    def test_tier_report_empty(self):
        assert "nothing attributed" in tier_report({})
