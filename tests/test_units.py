"""Tests for repro.util.units."""

import pytest

from repro.util.units import (
    GHZ,
    GIB,
    KIB,
    MHZ,
    MIB,
    GIGA,
    TERA,
    Frequency,
    bytes_str,
    count_str,
    seconds_str,
)


class TestConstants:
    def test_binary_multipliers_chain(self):
        assert MIB == 1024 * KIB
        assert GIB == 1024 * MIB

    def test_decimal_vs_binary_differ(self):
        assert GIGA != GIB
        assert GIGA < GIB


class TestFrequency:
    def test_cycles_to_seconds(self):
        clk = Frequency(1.0 * GHZ)
        assert clk.cycles_to_seconds(1_000_000_000) == pytest.approx(1.0)

    def test_seconds_to_cycles_roundtrip(self):
        clk = Frequency(940 * MHZ)
        cycles = 123_456
        assert clk.seconds_to_cycles(clk.cycles_to_seconds(cycles)) == pytest.approx(cycles)

    def test_period(self):
        assert Frequency(2 * GHZ).period_s == pytest.approx(0.5e-9)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Frequency(0)
        with pytest.raises(ValueError):
            Frequency(-1e9)

    def test_str_picks_unit(self):
        assert "GHz" in str(Frequency(1.05 * GHZ))
        assert "MHz" in str(Frequency(700 * MHZ))


class TestFormatting:
    def test_bytes_str_mib(self):
        assert bytes_str(128 * MIB) == "128 MiB"

    def test_bytes_str_small(self):
        assert bytes_str(12) == "12 B"

    def test_bytes_str_gib(self):
        assert "GiB" in bytes_str(8 * GIB)

    def test_count_str_tera(self):
        assert count_str(138 * TERA) == "138 T"

    def test_count_str_plain(self):
        assert count_str(42) == "42"

    def test_seconds_str_ms(self):
        assert seconds_str(0.0025) == "2.5 ms"

    def test_seconds_str_us(self):
        assert "us" in seconds_str(3.1e-5)

    def test_seconds_str_seconds(self):
        assert seconds_str(2.0) == "2 s"
