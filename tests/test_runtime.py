"""Tests for the runtime: artifacts and the inference server."""

import numpy as np
import pytest

from repro.arch import TPUV1, TPUV3, TPUV4I
from repro.compiler import compile_model
from repro.runtime import InferenceServer, load_artifact, save_artifact
from repro.runtime.artifact import artifact_from_compiled

from tests.conftest import make_tiny_mlp


class TestArtifacts:
    def test_roundtrip(self, tiny_mlp, tmp_path):
        compiled = compile_model(tiny_mlp, TPUV4I)
        path = save_artifact(compiled, tmp_path / "model.tpu")
        loaded = load_artifact(path)
        assert loaded.metadata["model"] == "tiny"
        assert loaded.metadata["chip"] == "TPUv4i"
        assert loaded.generation == 4
        assert len(loaded.program) == len(compiled.program)

    def test_runs_on_gate(self, tiny_mlp, tmp_path):
        compiled = compile_model(tiny_mlp, TPUV3)
        loaded = load_artifact(save_artifact(compiled, tmp_path / "m.tpu"))
        assert loaded.runs_on(TPUV3)
        assert not loaded.runs_on(TPUV4I)

    def test_loaded_program_simulates(self, tiny_mlp, tmp_path):
        from repro.sim import TensorCoreSim

        compiled = compile_model(tiny_mlp, TPUV4I)
        loaded = load_artifact(save_artifact(compiled, tmp_path / "m.tpu"))
        direct = TensorCoreSim(TPUV4I).run(compiled.program)
        via_artifact = TensorCoreSim(TPUV4I).run(loaded.program)
        assert via_artifact.cycles == direct.cycles

    def test_corrupt_header_rejected(self, tmp_path):
        path = tmp_path / "bad.tpu"
        path.write_bytes(b"not json\ngarbage")
        with pytest.raises(ValueError, match="corrupt|not an artifact"):
            load_artifact(path)

    def test_wrong_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.tpu"
        path.write_bytes(b'{"magic": "something-else", "generation": 4}\nxx')
        with pytest.raises(ValueError, match="repro-artifact"):
            load_artifact(path)

    def test_header_binary_mismatch_rejected(self, tiny_mlp, tmp_path):
        compiled = compile_model(tiny_mlp, TPUV4I)
        artifact = artifact_from_compiled(compiled)
        tampered = dict(artifact.metadata)
        tampered["generation"] = 3  # lie about the target
        path = save_artifact(
            type(artifact)(program=artifact.program, metadata=tampered),
            tmp_path / "lie.tpu")
        with pytest.raises(ValueError, match="does not match"):
            load_artifact(path)

    def test_no_header_line(self, tmp_path):
        path = tmp_path / "empty.tpu"
        path.write_bytes(b"no newline at all")
        with pytest.raises(ValueError):
            load_artifact(path)


class TestInferenceServer:
    def test_serves_outputs_and_latency(self, tiny_mlp):
        server = InferenceServer(tiny_mlp, TPUV4I)
        result = server.infer()
        assert result.output.shape == tiny_mlp.root.shape.dims
        assert result.latency_s > 0
        assert result.energy_j > 0

    def test_arithmetic_defaults_to_chip_best(self, tiny_mlp):
        assert InferenceServer(tiny_mlp, TPUV4I).arithmetic == "bf16"

    def test_explicit_inputs_change_outputs(self, tiny_mlp):
        server = InferenceServer(tiny_mlp, TPUV4I)
        a = server.infer().output
        custom = {"x": np.ones((4, 256), dtype=np.float32)}
        b = server.infer(inputs=custom).output
        assert not np.array_equal(a, b)

    def test_same_request_same_bits(self, tiny_mlp):
        """Lesson 10 at the serving API: deterministic answers."""
        server = InferenceServer(tiny_mlp, TPUV4I)
        assert np.array_equal(server.infer().output, server.infer().output)

    def test_cross_generation_same_bits(self, tiny_mlp):
        v3 = InferenceServer(tiny_mlp, TPUV3, seed=9)
        v4i = InferenceServer(tiny_mlp, TPUV4I, seed=9)
        assert np.array_equal(v3.infer().output, v4i.infer().output)

    def test_unsupported_arithmetic_rejected(self, tiny_mlp):
        with pytest.raises(ValueError):
            InferenceServer(tiny_mlp, TPUV4I, arithmetic="fp64")

    def test_describe(self, tiny_mlp):
        assert "TPUv4i" in InferenceServer(tiny_mlp, TPUV4I).describe()
