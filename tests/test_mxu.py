"""Tests for the MXU timing model."""

import pytest

from repro.arch import MxuModel, TPUV1, TPUV4I


@pytest.fixture(scope="module")
def mxu():
    return MxuModel(TPUV4I)


class TestMatmulTiming:
    def test_big_square_near_ideal(self, mxu):
        t = mxu.matmul(4096, 4096, 4096)
        assert t.utilization > 0.9

    def test_small_batch_starves_array(self, mxu):
        """m << d is the LSTM regime: weight loads dominate."""
        t = mxu.matmul(8, 1024, 1024)
        assert t.utilization < 0.15
        assert t.weight_load_cycles > 0

    def test_utilization_monotone_in_m(self, mxu):
        utils = [mxu.matmul(m, 1024, 1024).utilization
                 for m in (8, 32, 128, 512, 2048)]
        assert utils == sorted(utils)

    def test_macs_counted_exactly(self, mxu):
        t = mxu.matmul(100, 200, 300)
        assert t.macs == 100 * 200 * 300

    def test_tile_count(self, mxu):
        t = mxu.matmul(256, 256, 256)
        assert t.tiles == 4  # 2 K-tiles x 2 N-tiles

    def test_ragged_dims_round_up(self, mxu):
        t = mxu.matmul(1, 129, 129)
        assert t.tiles == 4

    def test_cycles_at_least_ideal(self, mxu):
        for dims in ((1, 1, 1), (128, 128, 128), (1000, 3000, 170)):
            t = mxu.matmul(*dims)
            assert t.cycles >= t.ideal_cycles

    def test_arrays_speed_up(self):
        one = MxuModel(TPUV4I.variant("x", mxus_per_core=1)).matmul(512, 2048, 2048)
        four = MxuModel(TPUV4I).matmul(512, 2048, 2048)
        assert one.cycles == pytest.approx(4 * four.cycles, rel=0.05)

    def test_rejects_nonpositive(self, mxu):
        with pytest.raises(ValueError):
            mxu.matmul(0, 128, 128)

    def test_v1_bigger_array(self):
        v1 = MxuModel(TPUV1)
        assert v1.peak_macs_per_cycle() == 256 * 256
        # A 256-deep matmul fits one v1 tile but four v4i tiles.
        assert v1.matmul(512, 256, 256).tiles == 1


class TestConv:
    def test_conv_maps_to_im2col(self, mxu):
        t = mxu.conv2d(batch=8, out_h=14, out_w=14, in_ch=256, out_ch=512,
                       kernel_h=3, kernel_w=3)
        assert t.macs == 8 * 14 * 14 * 3 * 3 * 256 * 512

    def test_conv_1x1_is_plain_matmul(self, mxu):
        conv = mxu.conv2d(1, 7, 7, 2048, 512, 1, 1)
        mm = mxu.matmul(49, 2048, 512)
        assert conv.cycles == mm.cycles
