"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.arch import MxuModel, TPUV4I, VpuModel
from repro.graph import Shape
from repro.isa import (
    Bundle,
    Instruction,
    Opcode,
    Program,
    decode_program,
    encode_program,
)
from repro.numerics import (
    QuantParams,
    calibrate,
    dequantize,
    quantize,
    snr_db,
    to_bf16,
)
from repro.serving import percentile
from repro.tco import die_yield, dies_per_wafer
from repro.tech import node_by_name

dims = st.integers(min_value=1, max_value=4096)
small_floats = st.floats(min_value=-1e6, max_value=1e6,
                         allow_nan=False, allow_infinity=False, width=32)


class TestMxuInvariants:
    @given(m=dims, k=dims, n=dims)
    @settings(max_examples=150, deadline=None)
    def test_cycles_bounded_and_macs_exact(self, m, k, n):
        t = MxuModel(TPUV4I).matmul(m, k, n)
        assert t.macs == m * k * n
        assert t.ideal_cycles <= t.cycles
        assert 0 < t.utilization <= 1.0

    @given(m=dims, k=dims, n=dims)
    @settings(max_examples=60, deadline=None)
    def test_doubling_m_never_reduces_cycles(self, m, k, n):
        mxu = MxuModel(TPUV4I)
        assert mxu.matmul(2 * m, k, n).cycles >= mxu.matmul(m, k, n).cycles


class TestVpuInvariants:
    @given(elements=st.integers(min_value=0, max_value=10_000_000))
    @settings(max_examples=100, deadline=None)
    def test_cycles_monotone_nonnegative(self, elements):
        vpu = VpuModel(TPUV4I)
        t = vpu.elementwise("add", elements)
        assert t.cycles >= 0
        assert t.cycles <= elements + 1


class TestBf16Properties:
    @given(st.lists(small_floats, min_size=1, max_size=200))
    @settings(max_examples=150, deadline=None)
    def test_idempotent(self, values):
        arr = np.array(values, dtype=np.float32)
        once = to_bf16(arr)
        assert np.array_equal(to_bf16(once), once)

    @given(st.lists(small_floats, min_size=1, max_size=200))
    @settings(max_examples=150, deadline=None)
    def test_relative_error_bounded(self, values):
        arr = np.array(values, dtype=np.float32)
        out = to_bf16(arr)
        err = np.abs(out - arr)
        assert np.all(err <= np.abs(arr) * 2.0**-8 + 1e-30)

    @given(st.lists(small_floats, min_size=1, max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_monotone(self, values):
        """bf16 rounding preserves order (weak monotonicity)."""
        arr = np.sort(np.array(values, dtype=np.float32))
        out = to_bf16(arr)
        assert np.all(np.diff(out) >= 0)


class TestInt8Properties:
    @given(values=st.lists(small_floats.filter(lambda x: abs(x) > 1e-3),
                           min_size=4, max_size=200),
           scale_pct=st.floats(min_value=90.0, max_value=100.0))
    @settings(max_examples=100, deadline=None)
    def test_quantize_within_clip(self, values, scale_pct):
        arr = np.array(values, dtype=np.float32)
        params = calibrate(arr, percentile=scale_pct)
        q = quantize(arr, params)
        assert np.all(q >= -127) and np.all(q <= 127)
        back = dequantize(q, params)
        # Error bounded by half a step plus saturation of clipped outliers.
        step = params.scale
        clip = 127 * step
        expected = np.clip(arr, -clip, clip)
        assert np.all(np.abs(back - expected) <= step / 2 + 1e-6 * np.abs(arr))


class TestEncodingProperties:
    opcode_pool = [Opcode.VADD, Opcode.VEXP, Opcode.MXM, Opcode.DMA_IN,
                   Opcode.SYNC_WAIT, Opcode.HALT]

    @given(st.lists(
        st.sampled_from(opcode_pool).flatmap(
            lambda op: st.tuples(
                st.just(op),
                st.lists(st.integers(min_value=0, max_value=2**20),
                         min_size=op.arity, max_size=op.arity))),
        min_size=1, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip(self, instruction_specs):
        program = Program("prop", generation=4)
        for op, args in instruction_specs:
            program.append(Bundle((Instruction(op, tuple(args)),)))
        decoded = decode_program(encode_program(program), 4)
        assert [str(b) for b in decoded.bundles] == [
            str(b) for b in program.bundles]


class TestShapeProperties:
    @given(dims_list=st.lists(st.integers(min_value=1, max_value=64),
                              min_size=1, max_size=4),
           dtype=st.sampled_from(["int8", "bf16", "fp32"]))
    @settings(max_examples=100, deadline=None)
    def test_byte_size_consistent(self, dims_list, dtype):
        shape = Shape(tuple(dims_list), dtype)
        assert shape.byte_size == shape.num_elements * shape.dtype.size_bytes
        assert shape.num_elements >= 1


class TestPercentileProperties:
    @given(values=st.lists(st.floats(min_value=0, max_value=1e6,
                                     allow_nan=False),
                           min_size=1, max_size=500),
           pct=st.floats(min_value=1.0, max_value=100.0))
    @settings(max_examples=150, deadline=None)
    def test_percentile_is_an_element_and_bounded(self, values, pct):
        p = percentile(values, pct)
        assert p in values
        assert min(values) <= p <= max(values)

    @given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False),
                    min_size=1, max_size=200))
    @settings(max_examples=80, deadline=None)
    def test_monotone_in_pct(self, values):
        assert (percentile(values, 50) <= percentile(values, 95)
                <= percentile(values, 99))


class TestYieldProperties:
    @given(area=st.floats(min_value=10, max_value=800),
           node_name=st.sampled_from(["28nm", "16nm", "7nm"]))
    @settings(max_examples=100, deadline=None)
    def test_yield_and_dies_sane(self, area, node_name):
        node = node_by_name(node_name)
        assert 0 < die_yield(node, area) <= 1
        assert dies_per_wafer(area) >= 1
