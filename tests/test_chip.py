"""Tests for repro.arch.chip: the four generations' published peaks."""

import dataclasses

import pytest

from repro.arch import GENERATIONS, TPUV1, TPUV2, TPUV3, TPUV4I, chip_by_name
from repro.util.units import GIB, MIB, TERA


class TestPublishedPeaks:
    """The paper's Table 1 headline numbers, asserted to ~1%."""

    def test_tpuv1_92_tops_int8(self):
        assert TPUV1.peak_tops == pytest.approx(91.75, rel=0.01)

    def test_tpuv2_46_tflops(self):
        assert TPUV2.peak_tops == pytest.approx(45.9, rel=0.01)

    def test_tpuv3_123_tflops(self):
        assert TPUV3.peak_tops == pytest.approx(123.2, rel=0.01)

    def test_tpuv4i_138_tops(self):
        assert TPUV4I.peak_tops == pytest.approx(137.6, rel=0.01)

    def test_tpuv4i_cmem_128_mib(self):
        assert TPUV4I.cmem_bytes == 128 * MIB

    def test_tpuv4i_air_cooled_175w(self):
        assert TPUV4I.cooling == "air"
        assert TPUV4I.tdp_w == 175.0

    def test_tpuv3_liquid_cooled(self):
        assert TPUV3.cooling == "liquid"

    def test_generation_order(self):
        assert [c.generation for c in GENERATIONS] == [1, 2, 3, 4]
        years = [c.year_deployed for c in GENERATIONS]
        assert years == sorted(years)

    def test_only_v1_lacks_bf16(self):
        assert not TPUV1.supports_dtype("bf16")
        for chip in (TPUV2, TPUV3, TPUV4I):
            assert chip.supports_dtype("bf16")

    def test_v4i_supports_int8_and_bf16(self):
        """Lesson 7: the inference chip keeps floating point."""
        assert TPUV4I.supports_dtype("int8")
        assert TPUV4I.supports_dtype("bf16")


class TestDerivedProperties:
    def test_macs_per_cycle(self):
        assert TPUV4I.macs_per_cycle == 4 * 128 * 128
        assert TPUV1.macs_per_cycle == 256 * 256

    def test_on_chip_bytes_includes_cmem(self):
        assert TPUV4I.on_chip_bytes == TPUV4I.vmem_bytes + 128 * MIB

    def test_ridge_point_v4i(self):
        ridge = TPUV4I.ridge_ops_per_byte()
        assert ridge == pytest.approx(TPUV4I.peak_ops / TPUV4I.hbm_bw)
        assert 150 < ridge < 300

    def test_lookup(self):
        assert chip_by_name("TPUv4i") is TPUV4I
        with pytest.raises(KeyError):
            chip_by_name("TPUv5")

    def test_variant_overrides(self):
        v = TPUV4I.variant("test", mxus_per_core=8)
        assert v.name == "test"
        assert v.peak_tops == pytest.approx(2 * TPUV4I.peak_tops)
        assert TPUV4I.mxus_per_core == 4  # original untouched


class TestValidation:
    def test_bad_cooling(self):
        with pytest.raises(ValueError):
            dataclasses.replace(TPUV4I, cooling="fans")

    def test_idle_below_tdp(self):
        with pytest.raises(ValueError):
            dataclasses.replace(TPUV4I, idle_w=200.0)

    def test_needs_dtypes(self):
        with pytest.raises(ValueError):
            dataclasses.replace(TPUV4I, dtypes=())
