"""Tests for the production app zoo and friends (E2, L5, L6)."""

import pytest

from repro.util.units import MIB
from repro.workloads import (
    GrowthModel,
    MLPERF_MODELS,
    PRODUCTION_APPS,
    PUBLISHED_MODEL_SIZES,
    Request,
    RequestGenerator,
    WORKLOAD_MIX_BY_YEAR,
    app_by_name,
    mix_for_year,
    mlperf_by_name,
)
from repro.workloads.evolution import transformer_trend, validate_mixes
from repro.workloads.growth import fitted_growth_rate


class TestAppRegistry:
    def test_eight_apps(self):
        assert len(PRODUCTION_APPS) == 8
        assert {w.category for w in PRODUCTION_APPS} == {
            "MLP", "CNN", "RNN", "Transformer"}

    def test_two_per_category(self):
        for category in ("MLP", "CNN", "RNN", "Transformer"):
            assert sum(1 for w in PRODUCTION_APPS
                       if w.category == category) == 2

    def test_lookup(self):
        assert app_by_name("bert0").category == "Transformer"
        with pytest.raises(KeyError):
            app_by_name("gpt3")

    def test_all_build_and_validate(self):
        for spec in PRODUCTION_APPS:
            module = spec.build(2)
            module.validate()
            assert module.total_flops() > 0

    def test_batch_parameterizes_flops_not_weights(self):
        spec = app_by_name("cnn0")
        one, four = spec.build(1), spec.build(4)
        assert four.total_flops() == pytest.approx(4 * one.total_flops(),
                                                   rel=0.01)
        assert four.total_weight_bytes() == one.total_weight_bytes()

    def test_footprint_bands(self):
        """The Table-2 shape: some apps fit 128 MiB CMEM, some do not."""
        fits = {w.name for w in PRODUCTION_APPS
                if w.weight_mib() <= 128}
        exceeds = {w.name for w in PRODUCTION_APPS} - fits
        assert "cnn0" in fits and "rnn0" in fits
        assert "bert1" in exceeds and "rnn1" in exceeds and "mlp0" in exceeds

    def test_cnn_intensity_beats_mlp(self):
        """CNNs live far right of MLPs on the roofline."""
        assert (app_by_name("cnn0").ops_per_byte()
                > 20 * app_by_name("mlp0").ops_per_byte())

    def test_slos_positive(self):
        assert all(w.slo_ms > 0 for w in PRODUCTION_APPS)


class TestMlperf:
    def test_three_models(self):
        assert len(MLPERF_MODELS) == 3

    def test_lookup_and_build(self):
        model = mlperf_by_name("resnet50")
        module = model.build(1)
        assert module.total_flops() > 1e9
        with pytest.raises(KeyError):
            mlperf_by_name("dlrm")

    def test_bert_large_footprint(self):
        module = mlperf_by_name("bert").build(1)
        assert module.total_weight_bytes() > 400 * MIB


class TestGrowth:
    def test_size_at_base_year(self):
        model = GrowthModel(2016, 100.0)
        assert model.size_at(2016) == 100.0

    def test_growth_rate_applies(self):
        model = GrowthModel(2016, 100.0, annual_rate=1.5)
        assert model.size_at(2018) == pytest.approx(225.0)

    def test_years_to_outgrow(self):
        model = GrowthModel(2016, 100.0, annual_rate=1.5)
        assert model.years_to_outgrow(225.0) == pytest.approx(2.0)
        assert model.years_to_outgrow(50.0) == 0.0

    def test_trajectory_inclusive(self):
        model = GrowthModel(2016, 1.0)
        points = model.trajectory(2016, 2020)
        assert len(points) == 5
        assert points[0] == (2016, 1.0)

    def test_published_sizes_grow(self):
        sizes = [s for _, _, s in PUBLISHED_MODEL_SIZES]
        assert sizes[-1] > 10 * sizes[0]

    def test_fitted_rate_at_least_paper_rate(self):
        """The 1.5x/yr lesson is conservative vs headline models."""
        assert fitted_growth_rate() >= 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            GrowthModel(2016, 0.0)
        with pytest.raises(ValueError):
            GrowthModel(2016, 1.0, annual_rate=0.9)


class TestEvolution:
    def test_mixes_sum_to_one(self):
        validate_mixes()

    def test_transformer_share_rises(self):
        trend = [share for _, share in transformer_trend()]
        assert trend == sorted(trend)
        assert trend[-1] > 4 * trend[0]

    def test_mlp_share_falls(self):
        assert (WORKLOAD_MIX_BY_YEAR[2020]["MLP"]
                < WORKLOAD_MIX_BY_YEAR[2016]["MLP"])

    def test_2016_matches_tpuv1_paper(self):
        mix = mix_for_year(2016)
        assert mix["MLP"] == pytest.approx(0.61)
        assert mix["RNN"] == pytest.approx(0.29)

    def test_unknown_year(self):
        with pytest.raises(KeyError):
            mix_for_year(2031)


class TestGenerator:
    def test_poisson_reproducible(self):
        a = RequestGenerator(1).poisson("t", 100, 2.0)
        b = RequestGenerator(1).poisson("t", 100, 2.0)
        assert [r.arrival_s for r in a] == [r.arrival_s for r in b]

    def test_poisson_rate(self):
        reqs = RequestGenerator(2).poisson("t", 500, 20.0)
        assert len(reqs) == pytest.approx(10_000, rel=0.05)

    def test_multi_tenant_merged_sorted(self):
        reqs = RequestGenerator(3).multi_tenant(["a", "b"], [50, 50], 5.0)
        times = [r.arrival_s for r in reqs]
        assert times == sorted(times)
        assert {r.tenant for r in reqs} == {"a", "b"}

    def test_diurnal_modulates_rate(self):
        reqs = RequestGenerator(4).diurnal("t", mean_rate_qps=100,
                                           duration_s=86_400,
                                           peak_to_trough=3.0)
        half = 86_400 / 2
        first = sum(1 for r in reqs if r.arrival_s < half)
        second = len(reqs) - first
        assert first > 1.3 * second  # sine peaks in the first half

    def test_request_validation(self):
        with pytest.raises(ValueError):
            Request(-1.0, "t")

    def test_tenant_rate_alignment(self):
        with pytest.raises(ValueError):
            RequestGenerator(0).multi_tenant(["a"], [1.0, 2.0], 1.0)
