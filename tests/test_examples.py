"""Smoke tests: the shipped examples must keep running.

Only the fast examples run here (the DSE/multichip ones take minutes and
are exercised by the benchmarks); each is imported from its file and its
``main()`` executed with stdout captured.
"""

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = ("quickstart", "deploy_artifact")


def _load(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs(name, capsys):
    module = _load(name)
    module.main()
    out = capsys.readouterr().out
    assert len(out) > 100  # produced a real report


def test_all_examples_have_main():
    for path in EXAMPLES_DIR.glob("*.py"):
        source = path.read_text()
        assert "def main(" in source, f"{path.name} lacks main()"
        assert '__main__' in source, f"{path.name} lacks entry point"
        assert '"""' in source.split("\n", 1)[0] + source, \
            f"{path.name} lacks a docstring"
