"""Shared fixtures: tiny models and memoized design points.

Session-scoped fixtures keep the suite fast: compiling/simulating a
workload is memoized inside DesignPoint, so tests share one instance per
chip.
"""

from __future__ import annotations

import pytest

from repro.arch import TPUV1, TPUV2, TPUV3, TPUV4I
from repro.core import DesignPoint
from repro.graph import GraphBuilder, Shape


@pytest.fixture(scope="session")
def v4i_point() -> DesignPoint:
    return DesignPoint(TPUV4I)


@pytest.fixture(scope="session")
def v3_point() -> DesignPoint:
    return DesignPoint(TPUV3)


def make_tiny_mlp(batch: int = 4, in_dim: int = 256, hidden: int = 128,
                  name: str = "tiny"):
    """A two-layer MLP used across compiler/sim tests."""
    builder = GraphBuilder(name)
    x = builder.parameter(Shape((batch, in_dim)), "x")
    w0 = builder.constant(Shape((in_dim, hidden)), "w0")
    h = builder.relu(builder.dot(x, w0, "h"), "act")
    w1 = builder.constant(Shape((hidden, 16)), "w1")
    out = builder.dot(h, w1, "out")
    module = builder.build()
    module.set_root(out)
    return module


@pytest.fixture()
def tiny_mlp():
    return make_tiny_mlp()


@pytest.fixture(scope="session")
def all_chips():
    return (TPUV1, TPUV2, TPUV3, TPUV4I)
