"""Tests for the HLO module/builder and its cost accounting."""

import pytest

from repro.graph import GraphBuilder, Shape
from repro.graph.ops import opdef

from tests.conftest import make_tiny_mlp


class TestBuilder:
    def test_uids_are_dense(self, tiny_mlp):
        assert [i.uid for i in tiny_mlp.instructions] == list(
            range(len(tiny_mlp.instructions)))

    def test_operands_must_belong(self):
        a = GraphBuilder("a")
        b = GraphBuilder("b")
        x = a.parameter(Shape((2, 2)))
        with pytest.raises(ValueError):
            b.relu(x)

    def test_root_defaults_to_last(self):
        b = GraphBuilder("m")
        b.parameter(Shape((2, 2)), "x")
        module = b.module
        assert module.root.opcode == "parameter"

    def test_set_root_rejects_foreign(self, tiny_mlp):
        other = make_tiny_mlp(name="other")
        with pytest.raises(ValueError):
            tiny_mlp.set_root(other.root)

    def test_bias_broadcast_allowed(self):
        b = GraphBuilder("m")
        x = b.parameter(Shape((4, 16)))
        bias = b.constant(Shape((16,)))
        assert b.add(x, bias).shape.dims == (4, 16)

    def test_shape_mismatch_rejected(self):
        b = GraphBuilder("m")
        x = b.parameter(Shape((4, 16)))
        y = b.parameter(Shape((4, 8)))
        with pytest.raises(ValueError):
            b.add(x, y)

    def test_reshape_conserves_elements(self):
        b = GraphBuilder("m")
        x = b.parameter(Shape((4, 16)))
        assert b.reshape(x, (64,)).shape.dims == (64,)
        with pytest.raises(ValueError):
            b.reshape(x, (65,))

    def test_transpose_permutes(self):
        b = GraphBuilder("m")
        x = b.parameter(Shape((2, 3, 4)))
        assert b.transpose(x, (2, 0, 1)).shape.dims == (4, 2, 3)
        with pytest.raises(ValueError):
            b.transpose(x, (0, 0, 1))

    def test_concat(self):
        b = GraphBuilder("m")
        x = b.parameter(Shape((2, 3)))
        y = b.parameter(Shape((2, 5)))
        assert b.concat([x, y], axis=1).shape.dims == (2, 8)

    def test_embedding_lookup_shape(self):
        b = GraphBuilder("m")
        table = b.constant(Shape((1000, 64)))
        ids = b.parameter(Shape((8, 4), "int32"))
        assert b.embedding_lookup(table, ids).shape.dims == (8, 4, 64)

    def test_convert_changes_dtype(self):
        b = GraphBuilder("m")
        x = b.parameter(Shape((2, 2), "bf16"))
        assert b.convert(x, "int8").shape.dtype_name == "int8"


class TestAccounting:
    def test_tiny_mlp_flops(self, tiny_mlp):
        # dot(4x256x128)*2 + relu(4*128) + dot(4x128x16)*2
        expected = 2 * 4 * 256 * 128 + 4 * 128 + 2 * 4 * 128 * 16
        assert tiny_mlp.total_flops() == expected

    def test_weight_bytes_counts_constants_only(self, tiny_mlp):
        assert tiny_mlp.total_weight_bytes() == (256 * 128 + 128 * 16) * 2

    def test_io_bytes(self, tiny_mlp):
        assert tiny_mlp.io_bytes() == 4 * 256 * 2 + 4 * 16 * 2

    def test_operational_intensity_positive(self, tiny_mlp):
        assert tiny_mlp.operational_intensity() > 0

    def test_batched_dot_flops(self):
        b = GraphBuilder("m")
        q = b.parameter(Shape((96, 128, 64)))
        k = b.parameter(Shape((96, 64, 128)))
        scores = b.batched_dot(q, k)
        assert b.module.instruction_flops(scores) == 2 * 96 * 128 * 64 * 128

    def test_conv_flops(self):
        b = GraphBuilder("m")
        x = b.parameter(Shape((2, 8, 8, 16)))
        f = b.constant(Shape((3, 3, 16, 32)))
        conv = b.conv2d(x, f)
        assert b.module.instruction_flops(conv) == 2 * 2 * 8 * 8 * 32 * 3 * 3 * 16

    def test_shape_ops_free(self):
        b = GraphBuilder("m")
        x = b.parameter(Shape((4, 4)))
        r = b.reshape(x, (16,))
        assert b.module.instruction_flops(r) == 0.0


class TestValidation:
    def test_validate_passes(self, tiny_mlp):
        tiny_mlp.validate()

    def test_instructions_of_kind(self, tiny_mlp):
        assert len(tiny_mlp.instructions_of_kind("matmul")) == 2
        assert len(tiny_mlp.instructions_of_kind("data")) == 3

    def test_kind_property(self, tiny_mlp):
        assert tiny_mlp.root.kind == opdef("dot").kind == "matmul"

    def test_str_renders(self, tiny_mlp):
        text = str(tiny_mlp)
        assert "HloModule tiny" in text
        assert "root" in text
