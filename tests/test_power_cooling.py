"""Tests for the power and cooling models (Lesson 8)."""

import pytest

from repro.arch import (
    AIR_COOLING,
    LIQUID_COOLING,
    GENERATIONS,
    PowerModel,
    TPUV1,
    TPUV3,
    TPUV4I,
    junction_temp_c,
)
from repro.arch.cooling import air_coolable, solution_for


class TestPowerModel:
    def test_dtype_energy_ordering(self):
        pm = PowerModel(TPUV4I)
        assert (pm.mac_energy_j("int8") < pm.mac_energy_j("bf16")
                < pm.mac_energy_j("fp32"))

    def test_unknown_dtype(self):
        with pytest.raises(KeyError):
            PowerModel(TPUV4I).mac_energy_j("fp64")

    def test_idle_power_is_floor(self):
        pm = PowerModel(TPUV4I)
        breakdown = pm.average_power(1.0)
        assert breakdown.total_w == pytest.approx(TPUV4I.idle_w)

    def test_activity_raises_power(self):
        pm = PowerModel(TPUV4I)
        busy = pm.average_power(1.0, macs=1e14, hbm_bytes=1e11)
        assert busy.total_w > TPUV4I.idle_w
        assert busy.mac_w > 0 and busy.hbm_w > 0

    def test_newer_node_more_efficient(self):
        """Same activity costs less on 7nm than 28nm (Lesson 1 energy curve)."""
        v4i = PowerModel(TPUV4I).average_power(1.0, macs=1e13, dtype="int8")
        v1 = PowerModel(TPUV1).average_power(1.0, macs=1e13, dtype="int8")
        assert v4i.mac_w < v1.mac_w / 3

    def test_tdp_estimate_within_2x_of_spec(self):
        for chip in GENERATIONS:
            dtype = "int8" if chip.generation == 1 else "bf16"
            estimate = PowerModel(chip).tdp_estimate_w(dtype)
            assert chip.tdp_w / 2.5 < estimate < chip.tdp_w * 2.5, chip.name

    def test_breakdown_as_dict(self):
        d = PowerModel(TPUV4I).average_power(1.0, macs=1e12).as_dict()
        assert d["total"] == pytest.approx(
            d["static"] + d["mac"] + d["sram"] + d["hbm"] + d["vector"])

    def test_validation(self):
        pm = PowerModel(TPUV4I)
        with pytest.raises(ValueError):
            pm.average_power(0.0)
        with pytest.raises(ValueError):
            pm.average_power(1.0, macs=-1)


class TestCooling:
    def test_v4i_is_air_coolable(self):
        """Lesson 8: 175 W ships in an air-cooled server."""
        assert air_coolable(TPUV4I.tdp_w)

    def test_v3_is_not_air_coolable(self):
        assert not air_coolable(TPUV3.tdp_w)
        assert LIQUID_COOLING.supports(TPUV3.tdp_w)

    def test_junction_temp_rises_with_power(self):
        assert (AIR_COOLING.junction_temp_c(175)
                > AIR_COOLING.junction_temp_c(75))

    def test_liquid_runs_cooler(self):
        assert (LIQUID_COOLING.junction_temp_c(175)
                < AIR_COOLING.junction_temp_c(175))

    def test_max_power_respects_both_limits(self):
        # At high ambient the thermal limit binds before the hard cap.
        hot = AIR_COOLING.max_power_w(ambient_c=50)
        cool = AIR_COOLING.max_power_w(ambient_c=20)
        assert hot < cool
        assert cool <= AIR_COOLING.max_sustained_w

    def test_chip_cooling_lookup(self):
        assert solution_for(TPUV4I) is AIR_COOLING
        assert solution_for(TPUV3) is LIQUID_COOLING
        assert junction_temp_c(TPUV4I, 175) == AIR_COOLING.junction_temp_c(175)

    def test_air_deployable_everywhere(self):
        """The deployability property the lesson turns on."""
        assert AIR_COOLING.deployable_everywhere
        assert not LIQUID_COOLING.deployable_everywhere

    def test_overhead_power(self):
        assert AIR_COOLING.overhead_power_w(100) == pytest.approx(12.0)
        with pytest.raises(ValueError):
            AIR_COOLING.overhead_power_w(-1)
