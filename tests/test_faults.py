"""Fault injection: schedules, serving under failures, bit-identity.

Three contracts under test:

* determinism — a seed fully decides every failure, so schedules and
  faulted ServingStats reproduce exactly (property-tested over seeds);
* zero-fault identity — a FaultModel with no active fault source (or an
  empty schedule) yields ServingStats bit-identical to a faultless run;
* fault semantics — outages delay launches, mid-batch failures destroy
  and retry the in-flight batch under the budget/timeout, permanent
  whole-chip death drops the remaining stream instead of hanging.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import TPUV3, TPUV4I
from repro.core.design_point import shared_design_point
from repro.faults import FaultModel, FaultSchedule, fault_sweep
from repro.serving import BatchPolicy, ServingSimulator, Slo
from repro.workloads import Request, RequestGenerator, app_by_name


def make_simulator(point, max_batch: int = 16,
                   max_wait_s: float = 0.002) -> ServingSimulator:
    spec = app_by_name("cnn0")
    return ServingSimulator(point, spec,
                            BatchPolicy(max_batch, max_wait_s),
                            Slo(spec.slo_ms / 1e3))


@pytest.fixture(scope="module")
def v4i_simulator(v4i_point):
    return make_simulator(v4i_point)


@pytest.fixture(scope="module")
def traffic():
    return RequestGenerator(11).poisson("cnn0", 300, 2.0)


class TestFaultModelValidation:
    def test_defaults_are_zero_fault(self):
        model = FaultModel()
        assert model.zero_fault
        assert model.schedule(2, 10.0).is_empty

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            FaultModel(seed=-1)
        with pytest.raises(ValueError):
            FaultModel(core_mtbf_s=0.0)
        with pytest.raises(ValueError):
            FaultModel(chip_mtbf_s=-1.0)
        with pytest.raises(ValueError):
            FaultModel(core_repair_s=-0.1)
        with pytest.raises(ValueError):
            FaultModel(slowdown_factor=0.5)
        with pytest.raises(ValueError):
            FaultModel(retry_budget=-1)
        with pytest.raises(ValueError):
            FaultModel(retry_timeout_s=0.0)

    def test_nan_rejected_everywhere(self):
        # NaN survives every <= / < comparison, so without an explicit
        # check it would sail into schedule generation and spin the
        # event loop forever. Each rate/duration must refuse it.
        nan = float("nan")
        for field in ("core_mtbf_s", "chip_mtbf_s", "slowdown_mtbf_s",
                      "core_repair_s", "chip_repair_s", "slowdown_s",
                      "slowdown_factor", "retry_timeout_s",
                      "horizon_pad_s"):
            with pytest.raises(ValueError, match="must not be NaN"):
                FaultModel(**{field: nan})

    def test_error_messages_name_the_value(self):
        with pytest.raises(ValueError,
                           match="core_mtbf_s must be positive, got -2.0"):
            FaultModel(core_mtbf_s=-2.0)
        with pytest.raises(ValueError,
                           match="chip_repair_s must be non-negative"):
            FaultModel(chip_repair_s=-0.5)
        with pytest.raises(ValueError, match="got 0.25"):
            FaultModel(slowdown_factor=0.25)
        with pytest.raises(ValueError, match="retry_budget.*got -3"):
            FaultModel(retry_budget=-3)

    def test_schedule_validation(self):
        with pytest.raises(ValueError):
            FaultSchedule(0, 1.0)
        with pytest.raises(ValueError):
            FaultSchedule(1, 1.0, down=[(1, 0.0, 0.5)])   # unknown core
        with pytest.raises(ValueError):
            FaultSchedule(1, 1.0, down=[(0, 0.5, 0.1)])   # end < start
        with pytest.raises(ValueError):
            FaultSchedule(1, 1.0, slowdowns=[(0, 0.0, 0.5, 0.9)])
        with pytest.raises(ValueError):
            FaultModel(core_mtbf_s=1.0).schedule(0, 1.0)


class TestScheduleGeneration:
    def test_same_seed_same_schedule(self):
        model = FaultModel(seed=42, core_mtbf_s=0.2, core_repair_s=0.05,
                           slowdown_mtbf_s=0.5)
        assert model.schedule(2, 10.0) == model.schedule(2, 10.0)

    def test_different_seed_different_schedule(self):
        kwargs = dict(core_mtbf_s=0.1, core_repair_s=0.05)
        first = FaultModel(seed=1, **kwargs).schedule(2, 10.0)
        second = FaultModel(seed=2, **kwargs).schedule(2, 10.0)
        assert first != second

    def test_lower_mtbf_more_failures(self):
        frequent = FaultModel(seed=5, core_mtbf_s=0.1).schedule(2, 20.0)
        rare = FaultModel(seed=5, core_mtbf_s=5.0).schedule(2, 20.0)
        assert len(frequent.down) > len(rare.down)

    def test_failures_within_horizon(self):
        schedule = FaultModel(seed=3, core_mtbf_s=0.2).schedule(2, 4.0)
        assert schedule.down
        assert all(start < 4.0 for _, start, _ in schedule.down)

    def test_chip_outage_hits_every_core(self):
        schedule = FaultModel(seed=9, chip_mtbf_s=1.0,
                              chip_repair_s=0.1).schedule(3, 20.0)
        starts = {}
        for core, start, end in schedule.down:
            starts.setdefault((start, end), set()).add(core)
        assert starts
        assert all(cores == {0, 1, 2} for cores in starts.values())

    def test_slowdown_windows_carry_factor(self):
        schedule = FaultModel(seed=4, slowdown_mtbf_s=0.5, slowdown_s=0.1,
                              slowdown_factor=3.0).schedule(1, 20.0)
        assert schedule.slowdowns
        assert all(factor == 3.0 and end - start == pytest.approx(0.1)
                   for _, start, end, factor in schedule.slowdowns)
        start = schedule.slowdowns[0][1]
        assert schedule.slowdown_factor(0, start) == 3.0

    def test_downtime_merges_and_clips(self):
        schedule = FaultSchedule(
            2, 10.0,
            down=[(0, 1.0, 3.0), (0, 2.0, 4.0), (1, 8.0, 20.0)])
        # Core 0: [1, 4) merged; core 1 clipped at the window edge.
        assert schedule.downtime_core_s(0.0, 10.0) == pytest.approx(5.0)
        assert schedule.downtime_core_s(3.5, 9.0) == pytest.approx(1.5)
        assert schedule.downtime_core_s(5.0, 5.0) == 0.0

    def test_outage_queries(self):
        schedule = FaultSchedule(1, 10.0, down=[(0, 1.0, 2.0), (0, 1.5, 3.0)])
        assert schedule.outage_end(0, 1.6) == 3.0   # latest covering end
        assert schedule.outage_end(0, 0.5) is None
        assert schedule.first_failure_between(0, 0.0, 1.2) == (1.0, 2.0)
        assert schedule.first_failure_between(0, 1.0, 1.4) is None


class TestBoundaryContract:
    """Pin the documented half-open/open semantics at exact timestamps.

    Every interval is half-open ``[start, end)`` for the covering
    queries and strictly open ``(a, b)`` for ``first_failure_between``.
    These regressions exist because the pod layer compiles link
    timelines through exactly these queries — an off-by-one at a window
    edge would silently shift slice outages."""

    def test_outage_covers_exact_start(self):
        schedule = FaultSchedule(1, 10.0, down=[(0, 1.0, 2.0)])
        assert schedule.outage_end(0, 1.0) == 2.0

    def test_outage_excludes_exact_end(self):
        schedule = FaultSchedule(1, 10.0, down=[(0, 1.0, 2.0)])
        assert schedule.outage_end(0, 2.0) is None

    def test_abutting_outages_chain_across_the_shared_instant(self):
        # [1, 2) then [2, 3): the shared instant 2.0 belongs to the
        # second interval only, so the core is down continuously.
        schedule = FaultSchedule(1, 10.0, down=[(0, 1.0, 2.0), (0, 2.0, 3.0)])
        assert schedule.outage_end(0, 2.0) == 3.0
        assert schedule.outage_end(0, 1.999) == 2.0

    def test_slowdown_covers_start_excludes_end(self):
        schedule = FaultSchedule(1, 10.0,
                                 slowdowns=[(0, 1.0, 2.0, 3.0)])
        assert schedule.slowdown_factor(0, 1.0) == 3.0
        assert schedule.slowdown_factor(0, 2.0) == 1.0

    def test_first_failure_between_is_strictly_inside(self):
        schedule = FaultSchedule(1, 10.0, down=[(0, 1.0, 2.0)])
        # A failure at exactly ``a`` or exactly ``b`` is NOT between.
        assert schedule.first_failure_between(0, 1.0, 5.0) is None
        assert schedule.first_failure_between(0, 0.0, 1.0) is None
        assert schedule.first_failure_between(0, 0.999, 1.001) == (1.0, 2.0)


class TestPermanentDeath:
    """``permanent_death_s`` drives sequence migration: the continuous
    simulator drains dying cores first and reroutes their queues."""

    def test_repairable_outages_are_not_death(self):
        schedule = FaultSchedule(1, 10.0,
                                 down=[(0, 1.0, 2.0), (0, 5.0, 6.0)])
        assert schedule.permanent_death_s(0) is None

    def test_infinite_end_is_death_at_its_start(self):
        schedule = FaultSchedule(1, 10.0, down=[(0, 3.0, math.inf)])
        assert schedule.permanent_death_s(0) == 3.0

    def test_earliest_permanent_outage_wins(self):
        schedule = FaultSchedule(
            1, 10.0,
            down=[(0, 7.0, math.inf), (0, 1.0, 2.0), (0, 4.0, math.inf)])
        assert schedule.permanent_death_s(0) == 4.0

    def test_deaths_are_per_core(self):
        schedule = FaultSchedule(3, 10.0, down=[(1, 2.0, math.inf)])
        assert schedule.permanent_death_s(0) is None
        assert schedule.permanent_death_s(1) == 2.0
        assert schedule.permanent_death_s(2) is None


class TestZeroFaultIdentity:
    def test_zero_fault_model_bit_identical(self, v4i_simulator, traffic):
        baseline = v4i_simulator.simulate(traffic)
        zero = v4i_simulator.simulate(traffic, faults=FaultModel(seed=123))
        assert zero == baseline  # dataclass equality: every field, exact

    def test_empty_schedule_bit_identical(self, v4i_simulator, traffic):
        baseline = v4i_simulator.simulate(traffic)
        empty = FaultSchedule(v4i_simulator.point.chip.cores, 10.0)
        assert v4i_simulator.simulate(traffic, schedule=empty) == baseline

    def test_faultless_stats_have_default_fault_fields(self, v4i_simulator,
                                                       traffic):
        stats = v4i_simulator.simulate(traffic)
        assert stats.availability == 1.0
        assert stats.retried_requests == 0
        assert stats.dropped_requests == 0
        assert stats.lost_batches == 0
        assert stats.lost_capacity_fraction == 0.0
        assert stats.served_requests == stats.requests


class TestServingUnderFaults:
    def test_outages_stretch_the_tail(self, v4i_simulator, traffic):
        model = FaultModel(seed=3, core_mtbf_s=0.3, core_repair_s=0.05)
        baseline = v4i_simulator.simulate(traffic)
        faulted = v4i_simulator.simulate(traffic, faults=model)
        assert faulted.p99_s > baseline.p99_s
        assert 0.0 < faulted.lost_capacity_fraction < 1.0

    def test_mid_batch_failure_is_retried(self, v4i_simulator):
        # Single request: launch at max_wait, so an outage beginning just
        # inside the flight window destroys exactly that batch.
        wait = v4i_simulator.policy.max_wait_s
        compute = v4i_simulator.batch_latency_s(1)
        fail_at = wait + compute / 2.0
        repair_end = fail_at + 0.05
        schedule = FaultSchedule(1, 10.0, down=[(0, fail_at, repair_end)])
        stats = v4i_simulator.simulate([Request(0.0, "c")], schedule=schedule)
        assert stats.lost_batches == 1
        assert stats.retried_requests == 1
        assert stats.dropped_requests == 0
        assert stats.availability == 1.0
        # The retry relaunches after the repair, so latency spans it.
        assert stats.p50_s == pytest.approx(repair_end + compute)

    def test_retry_budget_exhaustion_drops(self, v4i_simulator):
        wait = v4i_simulator.policy.max_wait_s
        compute = v4i_simulator.batch_latency_s(1)
        # Three consecutive kills: each outage starts mid-flight of the
        # relaunch after the previous repair.
        downs, start = [], wait + compute / 2.0
        for _ in range(3):
            end = start + 0.01
            downs.append((0, start, end))
            start = end + compute / 2.0
        schedule = FaultSchedule(1, 10.0, down=downs)
        model = FaultModel(retry_budget=2)
        stats = v4i_simulator.simulate([Request(0.0, "c")], faults=model,
                                       schedule=schedule)
        assert stats.dropped_requests == 1
        assert stats.availability == 0.0
        assert stats.lost_batches == 3
        assert stats.throughput_qps == 0.0

    def test_retry_timeout_drops(self, v4i_simulator):
        wait = v4i_simulator.policy.max_wait_s
        compute = v4i_simulator.batch_latency_s(1)
        schedule = FaultSchedule(
            1, 10.0, down=[(0, wait + compute / 2.0, 1.0)])
        model = FaultModel(retry_budget=10, retry_timeout_s=wait / 2.0)
        stats = v4i_simulator.simulate([Request(0.0, "c")], faults=model,
                                       schedule=schedule)
        assert stats.dropped_requests == 1
        assert stats.retried_requests == 0

    def test_retry_landing_after_timeout_drops(self, v4i_simulator):
        # Regression: the kill happens *within* the retry timeout (so
        # the request is retried), but the repair ends far beyond it —
        # the relaunch must drop the request instead of serving it
        # arbitrarily late. Before the fix this request was served at
        # t=1.0 against a 100 ms timeout.
        wait = v4i_simulator.policy.max_wait_s
        compute = v4i_simulator.batch_latency_s(1)
        fail_at = wait + compute / 2.0
        schedule = FaultSchedule(1, 10.0, down=[(0, fail_at, 1.0)])
        model = FaultModel(retry_budget=10, retry_timeout_s=0.1)
        assert fail_at < 0.1  # the kill itself is inside the timeout
        stats = v4i_simulator.simulate([Request(0.0, "c")], faults=model,
                                       schedule=schedule)
        assert stats.retried_requests == 1
        assert stats.dropped_requests == 1
        assert stats.served_requests == 0
        assert stats.availability == 0.0
        # Conservation held through the new drop path.
        assert (stats.served_requests + stats.dropped_requests
                + stats.shed_requests) == stats.requests

    def test_permanently_dead_chip_terminates(self, v4i_simulator, traffic):
        schedule = FaultSchedule(1, 10.0, down=[(0, 0.0, math.inf)])
        stats = v4i_simulator.simulate(traffic, schedule=schedule)
        assert stats.availability == 0.0
        assert stats.dropped_requests == stats.requests
        assert stats.throughput_qps == 0.0
        assert stats.p99_s == 0.0
        assert stats.mean_batch == 0.0

    def test_surviving_core_carries_the_load(self, v3_point):
        # TPUv3 has two cores: killing one forever halves capacity but
        # every request is still served.
        simulator = make_simulator(v3_point)
        requests = RequestGenerator(13).poisson("cnn0", 200, 1.0)
        schedule = FaultSchedule(2, 10.0, down=[(0, 0.0, math.inf)])
        stats = simulator.simulate(requests, schedule=schedule)
        assert stats.availability == 1.0
        assert stats.dropped_requests == 0
        assert stats.lost_capacity_fraction == pytest.approx(0.5, abs=0.05)

    def test_slowdown_scales_latency(self, v4i_simulator):
        schedule = FaultSchedule(
            1, 100.0, slowdowns=[(0, 0.0, 100.0, 3.0)])
        wait = v4i_simulator.policy.max_wait_s
        compute = v4i_simulator.batch_latency_s(1)
        stats = v4i_simulator.simulate([Request(0.0, "c")], schedule=schedule)
        assert stats.p50_s == pytest.approx(wait + 3.0 * compute)
        assert stats.availability == 1.0

    def test_core_count_mismatch_rejected(self, v4i_simulator, traffic):
        with pytest.raises(ValueError, match="cores"):
            v4i_simulator.simulate(traffic, schedule=FaultSchedule(2, 1.0))


class TestSeedReproducibility:
    """Satellite: FaultModel(seed=s) is reproducible end to end."""

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_same_seed_same_schedule_and_stats(self, seed):
        model = FaultModel(seed=seed, core_mtbf_s=0.2, core_repair_s=0.05,
                           slowdown_mtbf_s=0.4)
        assert model.schedule(2, 3.0) == model.schedule(2, 3.0)
        point = shared_design_point(TPUV4I)
        requests = RequestGenerator(seed).poisson("cnn0", 150, 0.5)
        if not requests:
            return
        first = make_simulator(point).simulate(requests, faults=model)
        second = make_simulator(point).simulate(requests, faults=model)
        assert first == second


class TestFaultSweep:
    def test_sweep_covers_all_four_generations(self):
        model = FaultModel(seed=2, core_mtbf_s=0.3, core_repair_s=0.05)
        rows = fault_sweep(model, apps=("cnn0",), duration_s=0.5)
        assert {row.chip for row in rows} == {"TPUv1", "TPUv2", "TPUv3",
                                              "TPUv4i"}
        for row in rows:
            assert 0.0 <= row.faulted.availability <= 1.0
            assert row.baseline.availability == 1.0
            assert row.p99_degradation >= 0.0

    def test_sweep_deterministic(self):
        model = FaultModel(seed=6, core_mtbf_s=0.25, core_repair_s=0.05)
        first = fault_sweep(model, apps=("mlp0",), chips=(TPUV4I, TPUV3),
                            duration_s=0.5)
        second = fault_sweep(model, apps=("mlp0",), chips=(TPUV4I, TPUV3),
                             duration_s=0.5)
        assert first == second

    def test_zero_fault_sweep_matches_baseline(self):
        rows = fault_sweep(FaultModel(seed=1), apps=("mlp0",),
                           chips=(TPUV4I,), duration_s=0.5)
        assert rows
        assert all(row.faulted == row.baseline for row in rows)

    def test_bad_arguments_rejected(self):
        with pytest.raises(ValueError):
            fault_sweep(FaultModel(), duration_s=0.0)
        with pytest.raises(ValueError):
            fault_sweep(FaultModel(), utilization=1.5)
