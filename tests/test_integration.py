"""Cross-module integration tests: the paper's claims end to end."""

import math

import pytest

from repro.arch import GENERATIONS, TPUV2, TPUV3, TPUV4I
from repro.compiler import RELEASES, compile_model, migrate_model
from repro.core import DesignPoint
from repro.roofline import place_module
from repro.serving import BatchPolicy, ServingSimulator, Slo
from repro.tco import chip_tco, perf_per_tco
from repro.workloads import PRODUCTION_APPS, RequestGenerator, app_by_name

FAST_APPS = ("mlp0", "cnn0", "rnn0", "bert0")


class TestHeadlineClaims:
    """Each test pins one paper-level claim the benchmarks print in full."""

    def test_v4i_faster_than_v3_per_chip(self, v4i_point, v3_point):
        """E8 shape: modest per-chip perf win (~1.1-1.3x)."""
        ratios = []
        for name in FAST_APPS:
            spec = app_by_name(name)
            v4i = v4i_point.evaluate(spec)
            v3 = v3_point.evaluate(spec)
            ratios.append(v4i.chip_qps / v3.chip_qps)
        geomean = math.prod(ratios) ** (1 / len(ratios))
        assert 1.0 < geomean < 1.6

    def test_v4i_perf_per_watt_win_is_big(self, v4i_point, v3_point):
        """E8 shape: ~2x+ perf/W from 7nm + air-cooled design point."""
        ratios = []
        for name in FAST_APPS:
            spec = app_by_name(name)
            ratios.append(v4i_point.evaluate(spec).samples_per_joule
                          / v3_point.evaluate(spec).samples_per_joule)
        geomean = math.prod(ratios) ** (1 / len(ratios))
        assert geomean > 2.0

    def test_compiler_gains_fifteen_months(self, v4i_point):
        """E9 shape: geomean ~1.5-2.5x from compiler releases alone."""
        gains = []
        for name in FAST_APPS:
            spec = app_by_name(name)
            module = spec.build(spec.default_batch)
            sim = v4i_point.sim
            first = sim.run(compile_model(module, TPUV4I,
                                          version=RELEASES[0]).program).seconds
            last = v4i_point.latency_s(spec, spec.default_batch)
            gains.append(first / last)
        geomean = math.prod(gains) ** (1 / len(gains))
        assert 1.5 < geomean < 2.6
        assert all(g >= 0.99 for g in gains)

    def test_every_app_meets_its_slo_on_v4i(self, v4i_point):
        """The production fleet is deployable: each app has a feasible batch."""
        for spec in PRODUCTION_APPS:
            batch = v4i_point.max_batch_under_slo(spec, spec.slo_ms / 1e3,
                                                  candidates=(1, 4, 8, 16))
            assert batch >= 1, spec.name

    def test_latency_not_batch_limits(self, v4i_point):
        """L9: the SLO binds before any architectural batch limit."""
        spec = app_by_name("cnn0")
        server = ServingSimulator(v4i_point, spec,
                                  BatchPolicy(max_batch=256, max_wait_s=0.001),
                                  Slo(spec.slo_ms / 1e3))
        slo_batch = server.max_slo_batch()
        assert slo_batch < 256  # hardware would take more; the SLO says no

    def test_roofline_agrees_with_simulator(self, v4i_point):
        """Apps the HBM roofline calls memory-bound are the CMEM-sensitive
        ones in the simulator; compute-bound apps are CMEM-insensitive.
        This is exactly the paper's CMEM argument."""
        mlp = app_by_name("mlp0")
        cnn = app_by_name("cnn0")
        mlp_point = place_module(mlp.build(mlp.default_batch), TPUV4I)
        cnn_point = place_module(cnn.build(cnn.default_batch), TPUV4I)
        assert mlp_point.memory_bound_hbm and not cnn_point.memory_bound_hbm

        def cmem_gain(spec):
            without = v4i_point.latency_s(spec, spec.default_batch,
                                          cmem_budget_bytes=0)
            with_cmem = v4i_point.latency_s(spec, spec.default_batch)
            return without / with_cmem

        assert cmem_gain(mlp) > 1.2       # memory-bound: CMEM matters
        assert cmem_gain(cnn) < cmem_gain(mlp)  # compute-bound: less so

    def test_perf_per_tco_favors_v4i(self, v4i_point, v3_point):
        """L3: the inference chip wins where it was designed to win."""
        spec = app_by_name("bert0")
        v4i_ev = v4i_point.evaluate(spec)
        v3_ev = v3_point.evaluate(spec)
        v4i_score = perf_per_tco(v4i_ev.chip_qps,
                                 chip_tco(TPUV4I, v4i_ev.chip_power_w))
        v3_score = perf_per_tco(v3_ev.chip_qps,
                                chip_tco(TPUV3, v3_ev.chip_power_w))
        assert v4i_score > 1.5 * v3_score

    def test_migration_story_end_to_end(self):
        """L2: a trained model moves v2 -> v3 -> v4i by recompilation only."""
        module = app_by_name("cnn0").build(1)
        hops = [(TPUV2, TPUV3), (TPUV3, TPUV4I)]
        for source, target in hops:
            report = migrate_model(module, source, target)
            assert report.recompiled and not report.binary_portable

    def test_serving_pipeline_end_to_end(self, v4i_point):
        """Traffic -> batcher -> simulator -> SLO accounting, all wired."""
        spec = app_by_name("bert0")
        server = ServingSimulator(v4i_point, spec,
                                  BatchPolicy(max_batch=8, max_wait_s=0.002),
                                  Slo(spec.slo_ms / 1e3))
        stats = server.simulate(RequestGenerator(42).poisson("b", 200, 2.0))
        assert stats.slo_violation_fraction < 0.05
        assert stats.p99_s < 3 * spec.slo_ms / 1e3


class TestGenerationSweep:
    def test_all_generations_evaluate_cnn0(self):
        """Every chip in Table 1 runs the vision app (int8 on TPUv1)."""
        from repro.compiler.pipeline import retarget_dtype
        from repro.sim import TensorCoreSim

        spec = app_by_name("cnn0")
        module = spec.build(4)
        for chip in GENERATIONS:
            if chip.supports_dtype("bf16"):
                compiled = compile_model(module, chip)
                result = TensorCoreSim(chip).run(compiled.program)
            else:
                compiled = compile_model(retarget_dtype(module, "int8"), chip)
                result = TensorCoreSim(chip).run(compiled.program,
                                                 dtype="int8")
            assert result.seconds > 0

    def test_peak_throughput_improves_across_bf16_generations(self):
        qps = []
        spec = app_by_name("cnn0")
        for chip in (TPUV2, TPUV3, TPUV4I):
            qps.append(DesignPoint(chip).evaluate(spec, batch=8).chip_qps)
        assert qps[0] < qps[1] < qps[2]
