"""Property-based tests over the whole compile+simulate pipeline.

Random small MLP-like modules, random target chips, random compiler
releases — the invariants that must hold for *any* input, not just the
workload zoo.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.arch import TPUV2, TPUV3, TPUV4I
from repro.compiler import RELEASES, compile_model
from repro.graph import GraphBuilder, Shape
from repro.sim import TensorCoreSim

CHIPS = (TPUV2, TPUV3, TPUV4I)

layer_dims = st.integers(min_value=1, max_value=256)
batches = st.integers(min_value=1, max_value=32)
activations = st.sampled_from(["relu", "tanh", "gelu", None])


@st.composite
def random_mlp(draw):
    batch = draw(batches)
    in_dim = draw(layer_dims)
    depth = draw(st.integers(min_value=1, max_value=4))
    builder = GraphBuilder("prop-mlp")
    x = builder.parameter(Shape((batch, in_dim)), "x")
    expected_macs = 0
    current = in_dim
    for layer in range(depth):
        out_dim = draw(layer_dims)
        w = builder.constant(Shape((current, out_dim)), f"w{layer}")
        x = builder.dot(x, w)
        expected_macs += batch * current * out_dim
        act = draw(activations)
        if act is not None:
            x = getattr(builder, act)(x)
        current = out_dim
    module = builder.build()
    module.set_root(x)
    return module, expected_macs


class TestPipelineInvariants:
    @given(spec=random_mlp(), chip=st.sampled_from(CHIPS),
           release=st.sampled_from(RELEASES))
    @settings(max_examples=60, deadline=None)
    def test_compile_and_run_invariants(self, spec, chip, release):
        module, expected_macs = spec
        compiled = compile_model(module, chip, version=release)
        compiled.program.validate()
        assert compiled.program.total_macs() == expected_macs

        result = TensorCoreSim(chip).run(compiled.program)
        counters = result.counters
        assert counters.macs == expected_macs
        # Cycles at least the MXU lower bound for the work.
        per_core_macs_per_cycle = (chip.mxus_per_core * chip.mxu_dim**2)
        assert counters.cycles >= expected_macs / per_core_macs_per_cycle / 2
        # Inputs always stream from HBM at least once.
        input_bytes = sum(i.shape.byte_size for i in module.instructions
                          if i.opcode == "parameter")
        assert counters.bytes_by_level.get("hbm", 0.0) >= input_bytes * 0.99
        # Reports are sane.
        assert 0 < result.report.compute_efficiency <= 1.0
        assert result.report.power.total_w >= chip.idle_w
        assert result.report.energy_j > 0

    @given(spec=random_mlp())
    @settings(max_examples=25, deadline=None)
    def test_deterministic_compilation(self, spec):
        module, _ = spec
        sim = TensorCoreSim(TPUV4I)
        first = sim.run(compile_model(module, TPUV4I).program)
        second = sim.run(compile_model(module, TPUV4I).program)
        assert first.cycles == second.cycles
        assert first.counters.bytes_by_level == second.counters.bytes_by_level

    @given(spec=random_mlp())
    @settings(max_examples=25, deadline=None)
    def test_weight_traffic_at_least_once(self, spec):
        """Every weight byte crosses some memory level at least once."""
        module, _ = spec
        compiled = compile_model(module, TPUV4I)
        result = TensorCoreSim(TPUV4I).run(compiled.program)
        moved = (result.counters.bytes_by_level.get("hbm", 0.0)
                 + result.counters.bytes_by_level.get("cmem", 0.0))
        assert moved >= module.total_weight_bytes() * 0.99

    @given(spec=random_mlp(), budget_mib=st.integers(min_value=0, max_value=128))
    @settings(max_examples=25, deadline=None)
    def test_cmem_budget_monotone(self, spec, budget_mib):
        """More CMEM never hurts (the E10 curve's global property)."""
        module, _ = spec
        sim = TensorCoreSim(TPUV4I)
        restricted = sim.run(compile_model(
            module, TPUV4I, cmem_budget_bytes=budget_mib * 2**20).program)
        full = sim.run(compile_model(module, TPUV4I).program)
        assert full.cycles <= restricted.cycles * 1.001 + 2


class TestTextRoundTripProperty:
    @given(spec=random_mlp())
    @settings(max_examples=40, deadline=None)
    def test_random_modules_roundtrip_text(self, spec):
        from repro.graph import module_from_text, module_to_text

        module, _ = spec
        text = module_to_text(module)
        restored = module_from_text(text)
        assert module_to_text(restored) == text
        assert restored.total_flops() == module.total_flops()
        assert restored.total_weight_bytes() == module.total_weight_bytes()

    @given(spec=random_mlp())
    @settings(max_examples=20, deadline=None)
    def test_parsed_module_simulates_identically(self, spec):
        from repro.graph import module_from_text, module_to_text

        module, _ = spec
        restored = module_from_text(module_to_text(module))
        sim = TensorCoreSim(TPUV4I)
        original = sim.run(compile_model(module, TPUV4I).program)
        reparsed = sim.run(compile_model(restored, TPUV4I).program)
        assert original.cycles == reparsed.cycles
