"""Tests for the end-to-end compile pipeline and the simulator."""

import pytest

from repro.arch import TPUV1, TPUV2, TPUV3, TPUV4I
from repro.compiler import RELEASES, compile_model
from repro.compiler.pipeline import UnsupportedDtypeError, retarget_dtype
from repro.graph import GraphBuilder, Shape
from repro.isa.instructions import Opcode
from repro.sim import TensorCoreSim

from tests.conftest import make_tiny_mlp


class TestPipeline:
    def test_compiles_and_carries_metadata(self, tiny_mlp):
        compiled = compile_model(tiny_mlp, TPUV4I)
        assert compiled.program.generation == 4
        assert compiled.program.metadata["compiler_version"] == "v2021.2"
        assert compiled.weight_bytes == tiny_mlp.total_weight_bytes()

    def test_program_macs_match_module_flops(self, tiny_mlp):
        compiled = compile_model(tiny_mlp, TPUV4I)
        matmul_flops = sum(
            tiny_mlp.instruction_flops(i)
            for i in tiny_mlp.instructions_of_kind("matmul"))
        assert 2 * compiled.program.total_macs() >= matmul_flops

    def test_bf16_rejected_on_tpuv1(self, tiny_mlp):
        with pytest.raises(UnsupportedDtypeError, match="TPUv1"):
            compile_model(tiny_mlp, TPUV1)

    def test_retarget_enables_tpuv1(self, tiny_mlp):
        quantized = retarget_dtype(tiny_mlp, "int8")
        compiled = compile_model(quantized, TPUV1)
        assert compiled.program.generation == 1

    def test_retarget_keeps_index_dtypes(self):
        b = GraphBuilder("m")
        table = b.constant(Shape((100, 8)))
        ids = b.parameter(Shape((2, 2), "int32"))
        b.embedding_lookup(table, ids)
        out = retarget_dtype(b.build(), "int8")
        dtypes = {i.shape.dtype_name for i in out.instructions}
        assert "int32" in dtypes and "int8" in dtypes

    def test_halt_terminates_program(self, tiny_mlp):
        program = compile_model(tiny_mlp, TPUV4I).program
        assert list(program.instructions())[-1].opcode is Opcode.HALT

    def test_cmem_budget_respected(self, tiny_mlp):
        compiled = compile_model(tiny_mlp, TPUV4I, cmem_budget_bytes=0)
        assert compiled.memory.cmem_weight_bytes == 0

    def test_summary_fields(self, tiny_mlp):
        summary = compile_model(tiny_mlp, TPUV4I).summary()
        assert summary["chip"] == "TPUv4i"
        assert summary["bundles"] > 0

    @pytest.mark.parametrize("chip", [TPUV2, TPUV3, TPUV4I])
    def test_all_bf16_generations_compile(self, tiny_mlp, chip):
        compiled = compile_model(tiny_mlp, chip)
        assert compiled.program.generation == chip.generation


class TestSimulator:
    def test_runs_and_counts(self, tiny_mlp):
        compiled = compile_model(tiny_mlp, TPUV4I)
        result = TensorCoreSim(TPUV4I).run(compiled.program)
        assert result.cycles > 0
        assert result.counters.macs == compiled.program.total_macs()
        assert result.report.seconds > 0

    def test_rejects_cross_generation_binary(self, tiny_mlp):
        compiled = compile_model(tiny_mlp, TPUV3)
        with pytest.raises(ValueError, match="Recompile"):
            TensorCoreSim(TPUV4I).run(compiled.program)

    def test_rejects_unsupported_dtype(self, tiny_mlp):
        compiled = compile_model(tiny_mlp, TPUV4I)
        with pytest.raises(ValueError):
            TensorCoreSim(TPUV4I).run(compiled.program, dtype="fp64")

    def test_deterministic(self, tiny_mlp):
        compiled = compile_model(tiny_mlp, TPUV4I)
        sim = TensorCoreSim(TPUV4I)
        assert sim.run(compiled.program).cycles == sim.run(compiled.program).cycles

    def test_trace_records_units(self, tiny_mlp):
        compiled = compile_model(tiny_mlp, TPUV4I)
        result = TensorCoreSim(TPUV4I).run(compiled.program, trace=True)
        units = {e.unit for e in result.trace.events}
        assert "mxu" in units
        assert any(u.startswith("dma.") for u in units)

    def test_traffic_flows_through_levels(self, tiny_mlp):
        compiled = compile_model(tiny_mlp, TPUV4I)
        result = TensorCoreSim(TPUV4I).run(compiled.program)
        assert result.counters.bytes_by_level.get("vmem", 0) > 0
        assert result.counters.bytes_by_level.get("hbm", 0) > 0

    def test_bigger_batch_more_cycles(self):
        sim = TensorCoreSim(TPUV4I)
        small = sim.run(compile_model(make_tiny_mlp(batch=256), TPUV4I).program)
        large = sim.run(compile_model(make_tiny_mlp(batch=4096), TPUV4I).program)
        assert large.cycles > small.cycles

    def test_weight_load_seconds(self):
        sim = TensorCoreSim(TPUV4I)
        assert sim.weight_load_seconds(TPUV4I.hbm_bw) == pytest.approx(1.0)
        assert sim.weight_load_seconds(0, "hbm") == 0.0
        with pytest.raises(ValueError):
            sim.weight_load_seconds(-1)
        with pytest.raises(ValueError):
            TensorCoreSim(TPUV3).weight_load_seconds(10, "cmem")

    def test_mxu_utilization_in_unit_range(self, tiny_mlp):
        result = TensorCoreSim(TPUV4I).run(compile_model(tiny_mlp, TPUV4I).program)
        assert 0 < result.report.mxu_utilization <= 1.0
        assert 0 < result.report.compute_efficiency <= 1.0


class TestVersionEffects:
    """Later compiler releases never slow a workload down."""

    def test_monotone_latency_tiny(self, tiny_mlp):
        sim = TensorCoreSim(TPUV4I)
        lats = [sim.run(compile_model(tiny_mlp, TPUV4I, version=v).program).seconds
                for v in RELEASES]
        assert lats[-1] <= lats[0] * 1.001

    def test_sync_dma_stalls_without_prefetch(self, tiny_mlp):
        sim = TensorCoreSim(TPUV4I)
        early = sim.run(compile_model(tiny_mlp, TPUV4I,
                                      version=RELEASES[0]).program)
        late = sim.run(compile_model(tiny_mlp, TPUV4I,
                                     version=RELEASES[-1]).program)
        assert early.counters.sync_stall_cycles >= late.counters.sync_stall_cycles

    def test_dense_scheduling_fewer_bundles(self, tiny_mlp):
        sparse = compile_model(tiny_mlp, TPUV4I, version=RELEASES[-2])
        dense = compile_model(tiny_mlp, TPUV4I, version=RELEASES[-1])
        assert len(dense.program) <= len(sparse.program)
