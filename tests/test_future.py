"""Tests for the growth stress-test (Lesson 5)."""

import pytest

from repro.arch import TPUV4I
from repro.core import DesignPoint
from repro.workloads.future import (
    deployment_lifetime,
    scaled_transformer,
)


class TestScaledTransformer:
    def test_year_zero_is_base(self):
        model = scaled_transformer(0)
        assert model.hidden == 768
        assert model.layers == 12
        assert model.growth_factor == 1.0

    def test_parameters_track_growth(self):
        base = scaled_transformer(0).build(1).total_weight_bytes()
        grown = scaled_transformer(2).build(1).total_weight_bytes()
        # Dense params target 2.25x; embeddings dilute the ratio a bit.
        assert 1.6 < grown / base < 2.6

    def test_width_and_depth_both_grow(self):
        early = scaled_transformer(0)
        late = scaled_transformer(4)
        assert late.hidden > early.hidden
        assert late.layers > early.layers

    def test_heads_divide_hidden(self):
        for years in range(5):
            model = scaled_transformer(years)
            assert model.hidden % model.heads == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            scaled_transformer(-1)
        with pytest.raises(ValueError):
            scaled_transformer(1, annual_rate=0.9)

    def test_built_module_validates(self):
        module = scaled_transformer(1).build(2)
        module.validate()
        assert module.total_flops() > 0


class TestDeploymentLifetime:
    def test_latency_grows_monotonically(self):
        point = DesignPoint(TPUV4I)
        entries = deployment_lifetime(point, slo_ms=15.0, batch=4,
                                      max_years=2)
        latencies = [e.latency_ms for e in entries]
        assert latencies == sorted(latencies)

    def test_qps_shrinks(self):
        point = DesignPoint(TPUV4I)
        entries = deployment_lifetime(point, slo_ms=15.0, batch=4,
                                      max_years=2)
        assert entries[-1].qps < entries[0].qps

    def test_custom_deploy_hook(self):
        point = DesignPoint(TPUV4I)
        calls = []

        def fake_deploy(module, batch):
            calls.append(module.name)
            return 0.001, 1000.0

        entries = deployment_lifetime(point, slo_ms=15.0, batch=4,
                                      max_years=1, deploy=fake_deploy)
        assert len(calls) == 2
        assert all(e.meets_slo for e in entries)
