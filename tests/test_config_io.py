"""Tests for chip JSON serialization and the CLI --chip-file path."""

import json

import pytest

from repro.arch import (
    GENERATIONS,
    TPUV4I,
    chip_from_json,
    chip_to_json,
    load_chip,
    save_chip,
)
from repro.cli import main


class TestChipJson:
    def test_roundtrip_all_generations(self):
        for chip in GENERATIONS:
            restored = chip_from_json(chip_to_json(chip))
            assert restored == chip

    def test_file_roundtrip(self, tmp_path):
        path = save_chip(TPUV4I, tmp_path / "v4i.json")
        assert load_chip(path) == TPUV4I

    def test_custom_chip_works_end_to_end(self, tmp_path):
        from repro.core import DesignPoint
        from repro.workloads import app_by_name

        custom = TPUV4I.variant("v4-lite", mxus_per_core=2, tdp_w=110.0)
        path = save_chip(custom, tmp_path / "lite.json")
        loaded = load_chip(path)
        evaluation = DesignPoint(loaded).evaluate(app_by_name("cnn0"),
                                                  batch=2)
        assert evaluation.chip == "v4-lite"
        assert evaluation.chip_qps > 0

    def test_unknown_field_rejected(self):
        payload = json.loads(chip_to_json(TPUV4I))
        payload["turbo_mode"] = True
        with pytest.raises(ValueError, match="unknown chip fields"):
            chip_from_json(json.dumps(payload))

    def test_missing_field_rejected(self):
        payload = json.loads(chip_to_json(TPUV4I))
        del payload["tdp_w"]
        with pytest.raises(ValueError, match="missing chip fields"):
            chip_from_json(json.dumps(payload))

    def test_unknown_process_rejected(self):
        payload = json.loads(chip_to_json(TPUV4I))
        payload["process"] = "3nm"
        with pytest.raises(KeyError):
            chip_from_json(json.dumps(payload))

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            chip_from_json("not json at all")
        with pytest.raises(ValueError):
            chip_from_json("[1, 2, 3]")

    def test_field_validation_still_applies(self):
        payload = json.loads(chip_to_json(TPUV4I))
        payload["cooling"] = "fans"
        with pytest.raises(ValueError):
            chip_from_json(json.dumps(payload))


class TestCliChipFile:
    def test_evaluate_with_chip_file(self, tmp_path, capsys):
        path = save_chip(TPUV4I.variant("filechip", tdp_w=150.0),
                         tmp_path / "c.json")
        code = main(["evaluate", "--app", "cnn0", "--batch", "2",
                     "--chip-file", str(path)])
        assert code == 0
        assert "filechip" in capsys.readouterr().out

    def test_evaluate_with_missing_file(self, capsys):
        assert main(["evaluate", "--app", "cnn0",
                     "--chip-file", "/nonexistent.json"]) == 2
        assert "error" in capsys.readouterr().err
