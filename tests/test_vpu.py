"""Tests for the VPU timing model."""

import pytest

from repro.arch import TPUV4I, VpuModel


@pytest.fixture(scope="module")
def vpu():
    return VpuModel(TPUV4I)


class TestElementwise:
    def test_ops_per_cycle(self, vpu):
        assert vpu.ops_per_cycle == TPUV4I.vpu_lanes * TPUV4I.vpu_sublanes * 2

    def test_add_one_element_one_cycle(self, vpu):
        assert vpu.elementwise("add", 1).cycles == 1

    def test_full_width_in_one_cycle(self, vpu):
        assert vpu.elementwise("add", vpu.ops_per_cycle).cycles == 1

    def test_transcendentals_cost_more(self, vpu):
        n = 100_000
        assert (vpu.elementwise("tanh", n).cycles
                > vpu.elementwise("exp", n).cycles
                > vpu.elementwise("add", n).cycles)

    def test_zero_elements_free(self, vpu):
        assert vpu.elementwise("mul", 0).cycles == 0

    def test_negative_rejected(self, vpu):
        with pytest.raises(ValueError):
            vpu.elementwise("add", -1)

    def test_unknown_op_lists_known(self, vpu):
        with pytest.raises(KeyError, match="gelu"):
            vpu.elementwise("frobnicate", 10)

    def test_cycles_scale_linearly(self, vpu):
        small = vpu.elementwise("add", 10_000).cycles
        large = vpu.elementwise("add", 100_000).cycles
        assert large == pytest.approx(10 * small, abs=1 + 10 * small * 0.05)


class TestReductionsAndSoftmax:
    def test_reduction_adds_tree_steps(self, vpu):
        base = vpu.elementwise("reduce", 4096).cycles
        red = vpu.reduction(4096, axis_len=4096).cycles
        assert red > base

    def test_reduction_validates(self, vpu):
        with pytest.raises(ValueError):
            vpu.reduction(10, 0)

    def test_softmax_is_four_passes(self, vpu):
        rows, row_len = 64, 512
        sm = vpu.softmax(rows, row_len)
        assert sm.elements == rows * row_len
        # More expensive than a single exp pass, cheaper than ten.
        exp = vpu.elementwise("exp", rows * row_len)
        assert exp.cycles < sm.cycles < 10 * exp.cycles

    def test_known_ops_exposed(self, vpu):
        assert "gelu" in vpu.known_ops()
        assert "reduce" in vpu.known_ops()
