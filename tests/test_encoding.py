"""Tests for binary encoding — the executable form of Lesson 2."""

import pytest

from repro.isa import (
    Bundle,
    IncompatibleBinaryError,
    Instruction,
    Opcode,
    Program,
    decode_program,
    encode_program,
    format_for_generation,
)


def sample_program(generation: int = 4) -> Program:
    p = Program("kernel", generation=generation)
    p.append(Bundle((Instruction(Opcode.DMA_IN, (0, 65536, 3)),)))
    p.append(Bundle((Instruction(Opcode.SYNC_WAIT, (3,)),
                     Instruction(Opcode.MXM, (128, 256, 512)))))
    p.append(Bundle((Instruction(Opcode.HALT),)))
    return p


class TestRoundTrip:
    @pytest.mark.parametrize("generation", [1, 2, 3, 4])
    def test_encode_decode_identity(self, generation):
        p = Program("k", generation=generation)
        p.append(Bundle((Instruction(Opcode.VADD, (1024,)),)))
        p.append(Bundle((Instruction(Opcode.HALT),)))
        decoded = decode_program(encode_program(p), generation)
        assert decoded.name == "k"
        assert [str(b) for b in decoded.bundles] == [str(b) for b in p.bundles]

    def test_operands_preserved(self):
        decoded = decode_program(encode_program(sample_program()), 4)
        mxm = [i for i in decoded.instructions() if i.opcode is Opcode.MXM][0]
        assert mxm.args == (128, 256, 512)


class TestIncompatibility:
    """A binary never crosses generations — why ship-the-binary failed."""

    @pytest.mark.parametrize("target", [1, 2, 3])
    def test_gen4_binary_rejected_elsewhere(self, target):
        binary = encode_program(sample_program(4))
        with pytest.raises(IncompatibleBinaryError):
            decode_program(binary, target)

    def test_every_pair_incompatible(self):
        for source in (1, 2, 3, 4):
            binary = encode_program(sample_program(source))
            for target in (1, 2, 3, 4):
                if target == source:
                    continue
                with pytest.raises(IncompatibleBinaryError):
                    decode_program(binary, target)

    def test_magics_differ(self):
        magics = {format_for_generation(g).magic for g in (1, 2, 3, 4)}
        assert len(magics) == 4

    def test_operand_widths_grew(self):
        assert (format_for_generation(1).operand_bytes
                < format_for_generation(4).operand_bytes)

    def test_program_generation_must_match_format(self):
        fmt = format_for_generation(3)
        with pytest.raises(IncompatibleBinaryError):
            fmt.encode(sample_program(4))

    def test_truncated_binary_rejected(self):
        binary = encode_program(sample_program())
        with pytest.raises(IncompatibleBinaryError):
            decode_program(binary[:-3], 4)

    def test_trailing_garbage_rejected(self):
        binary = encode_program(sample_program())
        with pytest.raises(IncompatibleBinaryError):
            decode_program(binary + b"\x00", 4)

    def test_short_blob_rejected(self):
        with pytest.raises(IncompatibleBinaryError):
            decode_program(b"TP4I", 4)

    def test_operand_overflow_rejected(self):
        p = Program("big", generation=1)
        # Generation 1 has 3-byte operands: 2^24 does not fit.
        p.append(Bundle((Instruction(Opcode.VADD, (1 << 24,)),)))
        with pytest.raises(ValueError):
            encode_program(p)

    def test_unknown_generation(self):
        with pytest.raises(KeyError):
            format_for_generation(9)
