"""Tests for repro.util.tables."""

import pytest

from repro.util.tables import Table, bar_chart


class TestTable:
    def test_renders_headers_and_rows(self):
        t = Table(["chip", "TDP (W)"])
        t.add_row(["TPUv4i", 175])
        out = t.render()
        assert "chip" in out and "TPUv4i" in out and "175" in out

    def test_row_length_checked(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_float_formatting(self):
        t = Table(["x"])
        t.add_row([3.14159265])
        assert "3.142" in t.render()

    def test_bool_formatting(self):
        t = Table(["ok"])
        t.add_rows([[True], [False]])
        out = t.render()
        assert "yes" in out and "no" in out

    def test_title_first_line(self):
        t = Table(["a"], title="Table 1")
        t.add_row([1])
        assert t.render().splitlines()[0] == "Table 1"

    def test_alignment_columns_line_up(self):
        t = Table(["name", "v"])
        t.add_row(["x", 1])
        t.add_row(["longer", 100])
        lines = t.render().splitlines()
        assert len({len(l) for l in lines}) == 1  # all same width

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            Table([])


class TestBarChart:
    def test_longest_bar_has_full_width(self):
        out = bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [-1.0])

    def test_rejects_mismatch(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_zero_values_ok(self):
        out = bar_chart(["a"], [0.0])
        assert "#" not in out

    def test_unit_suffix(self):
        out = bar_chart(["a"], [2.0], unit="TOPS")
        assert "TOPS" in out
