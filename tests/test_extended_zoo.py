"""Tests for the extended workload zoo and max pooling."""

import numpy as np
import pytest

from repro.arch import TPUV4I
from repro.compiler import compile_model
from repro.graph import GraphBuilder, Shape, evaluate_module
from repro.sim import TensorCoreSim
from repro.workloads import EXTENDED_APPS, extended_by_name


class TestRegistry:
    def test_three_apps(self):
        assert len(EXTENDED_APPS) == 3
        assert {w.name for w in EXTENDED_APPS} == {"dlrm", "gnmt", "speech"}

    def test_lookup(self):
        assert extended_by_name("dlrm").category == "MLP"
        with pytest.raises(KeyError):
            extended_by_name("llama")

    def test_all_build_validate_and_run(self):
        sim = TensorCoreSim(TPUV4I)
        for spec in EXTENDED_APPS:
            module = spec.build(2)
            module.validate()
            result = sim.run(compile_model(module, TPUV4I).program)
            assert result.seconds > 0


class TestDlrm:
    def test_interaction_is_batched_dot(self):
        module = extended_by_name("dlrm").build(4)
        batched = [i for i in module.instructions
                   if i.opcode == "batched_dot"]
        assert len(batched) == 1
        assert batched[0].shape.dims == (4, 9, 9)  # dense + 8 tables

    def test_eight_embedding_tables(self):
        module = extended_by_name("dlrm").build(2)
        gathers = module.instructions_of_kind("gather")
        assert len(gathers) == 8

    def test_functional_execution(self):
        module = extended_by_name("dlrm").build(2)
        out = evaluate_module(module, "bf16", seed=1)
        assert out.shape == (2, 1)
        assert np.all((out >= 0) & (out <= 1))  # sigmoid CTR head


class TestGnmt:
    def test_attention_per_decoder_step(self):
        module = extended_by_name("gnmt").build(2)
        batched = [i for i in module.instructions
                   if i.opcode == "batched_dot"]
        assert len(batched) == 2 * 24  # scores + context per step

    def test_functional_execution_small(self):
        from repro.workloads.extended import build_gnmt

        module = build_gnmt(1, seq=3, hidden=32, enc_layers=1, dec_layers=1)
        out = evaluate_module(module, "fp32", seed=2)
        assert out.shape == (1, 32_000)
        assert np.all(np.isfinite(out))


class TestSpeech:
    def test_conv_frontend_reduces_time(self):
        module = extended_by_name("speech").build(2)
        convs = module.instructions_of_kind("conv")
        assert len(convs) == 2

    def test_functional_execution_small(self):
        from repro.workloads.extended import build_speech

        module = build_speech(1, frames=8, mel=8, hidden=16, layers=1)
        out = evaluate_module(module, "fp32", seed=3)
        assert out.shape == (1, 4096)
        assert np.all(np.isfinite(out))


class TestMaxPool:
    def test_shape_inference(self):
        b = GraphBuilder("p")
        x = b.parameter(Shape((2, 8, 8, 16)))
        assert b.max_pool2d(x, 2, 2).shape.dims == (2, 4, 4, 16)
        assert b.max_pool2d(x, 3, 2).shape.dims == (2, 4, 4, 16)

    def test_flops_counted(self):
        b = GraphBuilder("p")
        x = b.parameter(Shape((1, 8, 8, 4)))
        pool = b.max_pool2d(x)
        assert b.module.instruction_flops(pool) == 8 * 8 * 4

    def test_evaluator_matches_manual(self):
        b = GraphBuilder("p")
        x = b.parameter(Shape((1, 4, 4, 1)), "x")
        b.max_pool2d(x, 2, 2)
        img = np.arange(16, dtype=np.float32).reshape(1, 4, 4, 1)
        out = evaluate_module(b.module, "fp32", inputs={"x": img})
        assert np.array_equal(out.reshape(2, 2),
                              [[5.0, 7.0], [13.0, 15.0]])

    def test_compiles_and_simulates(self):
        b = GraphBuilder("p")
        x = b.parameter(Shape((2, 32, 32, 8)))
        b.max_pool2d(x, 3, 2)
        result = TensorCoreSim(TPUV4I).run(
            compile_model(b.build(), TPUV4I).program)
        assert result.counters.vpu_busy_cycles > 0

    def test_bad_window_rejected(self):
        b = GraphBuilder("p")
        x = b.parameter(Shape((2, 8, 8, 4)))
        with pytest.raises(ValueError):
            b.max_pool2d(x, 0, 1)
