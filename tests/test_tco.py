"""Tests for the TCO model (Lesson 3, E12)."""

import pytest

from repro.arch import TPUV1, TPUV3, TPUV4I
from repro.tco import (
    ChipTco,
    chip_capex_usd,
    chip_opex_usd,
    chip_tco,
    die_cost_usd,
    die_yield,
    dies_per_wafer,
    perf_per_tco,
)
from repro.tco.model import rank_designs
from repro.tco.opex import OpexParams, average_wall_power_w
from repro.tech import node_by_name


class TestCapex:
    def test_dies_per_wafer_decreases_with_area(self):
        assert dies_per_wafer(100) > dies_per_wafer(400) > dies_per_wafer(800)

    def test_yield_decreases_with_area(self):
        node = node_by_name("7nm")
        assert die_yield(node, 100) > die_yield(node, 600)

    def test_yield_in_unit_range(self):
        for name in ("28nm", "16nm", "7nm"):
            y = die_yield(node_by_name(name), 400)
            assert 0 < y < 1

    def test_bigger_die_costs_more(self):
        node = node_by_name("16nm")
        assert die_cost_usd(node, 600) > 2 * die_cost_usd(node, 300)

    def test_leading_edge_die_costs_more(self):
        assert (die_cost_usd(node_by_name("7nm"), 400)
                > die_cost_usd(node_by_name("16nm"), 400))

    def test_chip_capex_ordering(self):
        """v3 (huge 16nm die + liquid) costs more than v4i to buy."""
        assert chip_capex_usd(TPUV3) > chip_capex_usd(TPUV4I)

    def test_v1_cheap_memory(self):
        assert chip_capex_usd(TPUV1) < chip_capex_usd(TPUV4I)

    def test_validation(self):
        with pytest.raises(ValueError):
            dies_per_wafer(0)


class TestOpex:
    def test_wall_power_exceeds_chip_power(self):
        wall = average_wall_power_w(TPUV4I, 120.0, OpexParams())
        assert wall > 0.55 * 120.0  # PUE + cooling overhead over duty cycle

    def test_higher_power_higher_opex(self):
        assert chip_opex_usd(TPUV3, 300.0) > chip_opex_usd(TPUV4I, 120.0)

    def test_longer_life_higher_opex(self):
        short = chip_opex_usd(TPUV4I, 120.0, OpexParams(years=1))
        long = chip_opex_usd(TPUV4I, 120.0, OpexParams(years=5))
        assert long > 3 * short

    def test_params_validated(self):
        with pytest.raises(ValueError):
            OpexParams(years=0)
        with pytest.raises(ValueError):
            OpexParams(utilization=0)


class TestTcoModel:
    def test_total_and_share(self):
        tco = ChipTco("x", capex_usd=1000.0, opex_usd=500.0)
        assert tco.total_usd == 1500.0
        assert tco.opex_share == pytest.approx(1 / 3)

    def test_chip_tco_combines(self):
        tco = chip_tco(TPUV4I, 120.0)
        assert tco.capex_usd > 0 and tco.opex_usd > 0

    def test_opex_is_material(self):
        """Lesson 3 premise: lifetime power is not a rounding error."""
        tco = chip_tco(TPUV3, 350.0)
        assert tco.opex_share > 0.3

    def test_perf_per_tco(self):
        tco = ChipTco("x", 1000.0, 1000.0)
        assert perf_per_tco(2000.0, tco) == 1.0
        with pytest.raises(ValueError):
            perf_per_tco(-1.0, tco)

    def test_rank_designs_can_reorder(self):
        """A cheap hot chip can win on CapEx and lose on TCO."""
        qps = {"hot": 1100.0, "cool": 1000.0}
        tcos = [ChipTco("hot", capex_usd=500.0, opex_usd=2000.0),
                ChipTco("cool", capex_usd=600.0, opex_usd=500.0)]
        ranking = rank_designs(qps, tcos)
        assert ranking["by_capex"][0] == "hot"
        assert ranking["by_tco"][0] == "cool"

    def test_rank_missing_tco_rejected(self):
        with pytest.raises(ValueError):
            rank_designs({"x": 1.0}, [])

    def test_rank_zero_capex_scores_zero(self):
        # Regression: a zero-capex entry used to raise ZeroDivisionError.
        qps = {"free": 1000.0, "paid": 1000.0}
        tcos = [ChipTco("free", capex_usd=0.0, opex_usd=100.0),
                ChipTco("paid", capex_usd=100.0, opex_usd=100.0)]
        ranking = rank_designs(qps, tcos)
        assert ranking["by_capex"][0] == "paid"

    def test_zero_cost_shares_are_finite(self):
        tco = ChipTco("x", capex_usd=0.0, opex_usd=0.0)
        assert tco.opex_share == 0.0
        assert perf_per_tco(100.0, tco) == 0.0
