"""Pod-scale sharding: topology, link faults, slice identity, chaos.

The contracts under test:

* topology — deterministic dimension-order routing, reroute around dead
  links, honest partition reporting, OCS dead-link transparency, and
  collective costs that follow the ring formulas exactly;
* link faults — seeded, forked, boundary-exact link timelines that
  reuse the pinned FaultSchedule contract with link indices in the core
  slot;
* IR pricing — ICI hops become DMA rows on an appended ``"ici"`` pool,
  visible in the replay byte ledger, never mutating the input program;
* identity — a 1-chip slice with zero link faults is bit-identical to
  the plain ServingSimulator (the foundation the whole layer stands
  on), and the pod chaos sweep reproduces itself byte for byte;
* integration — a dead link degrades a slice's served latency, a
  partitioned slice fails health probes and is ejected by the resilient
  router, and the slice-aware fleet planner prices link-induced slice
  loss into its spare walk.
"""

from __future__ import annotations

import math

import pytest

from repro.arch.chip import TPUV4I
from repro.arch.ici import IciLink
from repro.cluster.cluster import ClusterSimulator
from repro.cluster.planner import plan_resilient_fleet
from repro.cluster.policy import ClusterPolicy
from repro.core.design_point import shared_design_point
from repro.faults.model import FaultSchedule
from repro.pod import (
    PodFaultModel,
    PodTopology,
    ShardedProgram,
    SliceSimulator,
    attach_ici_rows,
    pod_chaos_sweep,
    slice_topology,
)
from repro.pod.sharding import ICI_LEVEL
from repro.serving.batching import BatchPolicy
from repro.serving.server import ServingSimulator
from repro.serving.slo import Slo
from repro.sim.lowered import K_DMA, K_SYNC_WAIT, FastReplay, lower_program
from repro.workloads.generator import RequestGenerator
from repro.workloads.models import app_by_name

GB = 1e9


def make_ring(n: int = 4, kind: str = "torus") -> PodTopology:
    return PodTopology((n,), IciLink(100 * GB, latency_s=1e-6), kind=kind)


def make_slice_sim(topology=None, members=None, max_batch: int = 8,
                   parallelism: str = "pipeline",
                   pod_faults=None) -> SliceSimulator:
    spec = app_by_name("cnn0")
    slo = Slo(spec.slo_ms / 1e3)
    point = shared_design_point(TPUV4I)
    return SliceSimulator(
        point, spec, BatchPolicy(max_batch, slo.limit_s / 4.0), slo,
        topology=topology if topology is not None else make_ring(),
        members=members, parallelism=parallelism, pod_faults=pod_faults)


class TestTopology:
    def test_coords_roundtrip(self):
        topo = PodTopology((2, 3), IciLink(1 * GB))
        for node in range(topo.num_chips):
            assert topo.node_at(topo.coords(node)) == node

    def test_link_ids_are_dense(self):
        topo = PodTopology((2, 2), IciLink(1 * GB))
        assert topo.num_links == 8  # node * ndims + axis, every node
        assert topo.link_id(3, 1) == 7

    def test_ring_routes_take_the_short_way(self):
        topo = make_ring(4)
        # 0 -> 1 is one forward hop over link 0.
        assert topo.route(0, 1) == (0,)
        # 0 -> 3 is one backward hop over node 3's own link.
        assert topo.route(0, 3) == (3,)

    def test_reroute_around_dead_link(self):
        topo = make_ring(4)
        # 0 -> 1 with link 0 dead: go the long way round (3 hops).
        route = topo.route(0, 1, dead=frozenset({0}))
        assert route == (3, 2, 1)

    def test_partition_reported_as_none(self):
        topo = make_ring(4)
        # Links 0 and 3 both touch node 0: node 0 is isolated.
        assert topo.route(0, 1, dead=frozenset({0, 3})) is None

    def test_ocs_ignores_dead_links(self):
        topo = make_ring(4, kind="ocs")
        assert topo.route(0, 1, dead=frozenset({0, 3})) == (0,)

    def test_all_reduce_matches_ring_formula(self):
        topo = make_ring(4)
        payload = 4096.0
        # 2(p-1) steps of bytes/p chunks over the bottleneck (uniform
        # ring: every pair is one hop).
        expected = 6 * topo.link.transfer_seconds(payload / 4)
        assert topo.all_reduce_seconds(payload) == pytest.approx(expected)

    def test_all_gather_matches_ring_formula(self):
        topo = make_ring(4)
        expected = 3 * topo.link.transfer_seconds(1024.0)
        assert topo.all_gather_seconds(1024.0) == pytest.approx(expected)

    def test_slow_link_raises_collective_cost(self):
        topo = make_ring(4)
        base = topo.all_reduce_seconds(4096.0)
        slow = topo.all_reduce_seconds(4096.0, slow={0: 4.0})
        assert slow > base

    def test_slice_topology_shapes(self):
        ring = slice_topology(TPUV4I, 4)
        assert ring.dims == (4,)  # 2 ICI ports -> 1D ring
        single = slice_topology(TPUV4I, 1)
        assert single.dims == (1,) and single.num_links == 0
        wide = TPUV4I.variant("wide", ici_links=4)
        assert slice_topology(wide, 4).dims == (2, 2)

    def test_chip_port_validation(self):
        topo = PodTopology((2, 2), IciLink(1 * GB))  # needs 4 ports
        with pytest.raises(ValueError):
            topo.validate_chip(TPUV4I)  # TPUv4i has 2

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            PodTopology((1, 4), IciLink(1 * GB))  # extent-1 axis
        with pytest.raises(ValueError):
            PodTopology((4,), IciLink(1 * GB), kind="mesh")
        with pytest.raises(ValueError):
            PodTopology((4,), IciLink(1 * GB),
                        ocs_reconfig_s=float("nan"))

    def test_routing_is_deterministic(self):
        topo = PodTopology((3, 3), IciLink(1 * GB))
        dead = frozenset({1, 4})
        for src in range(9):
            for dst in range(9):
                assert topo.route(src, dst, dead) == topo.route(src, dst,
                                                                dead)


class TestPodFaultModel:
    def test_defaults_are_zero_fault(self):
        assert PodFaultModel().zero_fault
        assert PodFaultModel().link_schedule(4, 1.0).is_empty

    def test_bad_parameters_name_the_field(self):
        with pytest.raises(ValueError, match="link_mtbf_s"):
            PodFaultModel(link_mtbf_s=0.0)
        with pytest.raises(ValueError, match="link_repair_s"):
            PodFaultModel(link_repair_s=-1.0)
        with pytest.raises(ValueError, match="link_slowdown_factor"):
            PodFaultModel(link_slowdown_factor=0.5)
        with pytest.raises(ValueError, match="must not be NaN"):
            PodFaultModel(link_slowdown_s=float("nan"))

    def test_schedule_deterministic(self):
        model = PodFaultModel(seed=3, link_mtbf_s=0.2,
                              link_slowdown_mtbf_s=0.3)
        assert model.link_schedule(4, 2.0) == model.link_schedule(4, 2.0)

    def test_link_streams_independent(self):
        """Adding a link never perturbs an existing link's draws."""
        model = PodFaultModel(seed=3, link_mtbf_s=0.2)
        small = model.link_schedule(2, 2.0)
        large = model.link_schedule(4, 2.0)
        for link in range(2):
            assert ([e for e in small.down if e[0] == link]
                    == [e for e in large.down if e[0] == link])

    def test_fork_for_slice_is_independent(self):
        model = PodFaultModel(seed=3, link_mtbf_s=0.2)
        a = model.fork_for_slice(0).link_schedule(4, 2.0)
        b = model.fork_for_slice(1).link_schedule(4, 2.0)
        assert a != b
        # And reproducible: the fork is a pure function of (seed, index).
        assert a == model.fork_for_slice(0).link_schedule(4, 2.0)


class TestAttachIciRows:
    def _lowered(self):
        point = shared_design_point(TPUV4I)
        spec = app_by_name("cnn0")
        program = point.compiled(spec, 1).program
        return lower_program(program, TPUV4I)

    def test_rows_appended_pre(self):
        lowered = self._lowered()
        out = attach_ici_rows(lowered, IciLink(100 * GB), [(4096, 1.0)])
        assert out.pool_levels[-1] == ICI_LEVEL
        assert out.level_names[-1] == ICI_LEVEL
        # Chain: bundle, DMA, sync-wait, then the original program.
        kinds = [row[0] for row in out.rows[:3]]
        assert kinds[1] == K_DMA and kinds[2] == K_SYNC_WAIT
        assert out.n_flags == lowered.n_flags + 1

    def test_input_not_mutated(self):
        lowered = self._lowered()
        rows_before = lowered.rows
        attach_ici_rows(lowered, IciLink(100 * GB), [(4096, 1.0)])
        assert lowered.rows is rows_before
        assert ICI_LEVEL not in lowered.pool_levels

    def test_ici_bytes_land_in_the_ledger(self):
        lowered = self._lowered()
        out = attach_ici_rows(lowered, IciLink(100 * GB),
                              [(4096, 1.0), (4096, 2.0)])
        result = FastReplay(TPUV4I).run(out)
        assert result.counters.bytes_by_level[ICI_LEVEL] == 4096 + 8192

    def test_slowdown_factor_scales_duration(self):
        lowered = self._lowered()
        replayer = FastReplay(TPUV4I)
        base = replayer.run(
            attach_ici_rows(lowered, IciLink(1 * GB), [(1 << 20, 1.0)]))
        slow = replayer.run(
            attach_ici_rows(lowered, IciLink(1 * GB), [(1 << 20, 4.0)]))
        assert slow.seconds > base.seconds

    def test_bad_arguments_rejected(self):
        lowered = self._lowered()
        with pytest.raises(ValueError):
            attach_ici_rows(lowered, IciLink(1 * GB), [(1, 1.0)],
                            where="mid")
        with pytest.raises(ValueError):
            attach_ici_rows(lowered, IciLink(1 * GB), [(-1, 1.0)])
        with pytest.raises(ValueError):
            attach_ici_rows(lowered, IciLink(1 * GB), [(1, 0.5)])


class TestShardedProgram:
    def test_pipeline_build(self):
        point = shared_design_point(TPUV4I)
        shard = ShardedProgram.build(point, app_by_name("cnn0"), 4,
                                     make_ring(4))
        assert shard.parallelism == "pipeline"
        assert 1 < len(shard.stage_lowereds) <= 4
        assert shard.inbound_bytes[0] == 0
        assert all(b > 0 for b in shard.inbound_bytes[1:])

    def test_degraded_latency_exceeds_healthy(self):
        point = shared_design_point(TPUV4I)
        shard = ShardedProgram.build(point, app_by_name("cnn0"), 4,
                                     make_ring(4))
        healthy = shard.latency_s(TPUV4I)
        rerouted = shard.latency_s(TPUV4I, dead=frozenset({0}))
        assert healthy is not None and rerouted is not None
        assert rerouted > healthy

    def test_partitioned_latency_is_none(self):
        point = shared_design_point(TPUV4I)
        shard = ShardedProgram.build(point, app_by_name("cnn0"), 4,
                                     make_ring(4))
        assert shard.latency_s(TPUV4I, dead=frozenset({0, 3})) is None

    def test_tensor_mode_all_gathers_the_root(self):
        point = shared_design_point(TPUV4I)
        shard = ShardedProgram.build(point, app_by_name("cnn0"), 8,
                                     make_ring(4), parallelism="tensor")
        assert len(shard.stage_lowereds) == 1
        assert shard.shard_output_bytes > 0
        assert shard.latency_s(TPUV4I) is not None

    def test_single_member_has_no_ici_rows(self):
        point = shared_design_point(TPUV4I)
        shard = ShardedProgram.build(point, app_by_name("cnn0"), 4,
                                     slice_topology(TPUV4I, 1))
        stages = shard.realized_stages()
        assert len(stages) == 1
        assert ICI_LEVEL not in stages[0].pool_levels

    def test_bad_arguments_rejected(self):
        point = shared_design_point(TPUV4I)
        spec = app_by_name("cnn0")
        with pytest.raises(ValueError):
            ShardedProgram.build(point, spec, 4, make_ring(4),
                                 parallelism="expert")
        with pytest.raises(ValueError):
            ShardedProgram.build(point, spec, 0, make_ring(4))
        with pytest.raises(ValueError):
            ShardedProgram.build(point, spec, 4, make_ring(4),
                                 members=(0, 0))
        with pytest.raises(ValueError):
            ShardedProgram.build(point, spec, 4, make_ring(4),
                                 members=(0, 9))


class TestSliceIdentity:
    """The identity contract: 1 chip + zero link faults == plain sim."""

    def _pair(self):
        spec = app_by_name("cnn0")
        slo = Slo(spec.slo_ms / 1e3)
        point = shared_design_point(TPUV4I)
        policy = BatchPolicy(8, slo.limit_s / 4.0)
        plain = ServingSimulator(point, spec, policy, slo)
        sliced = SliceSimulator(point, spec, policy, slo,
                                topology=slice_topology(TPUV4I, 1))
        return plain, sliced

    def test_single_chip_latencies_identical(self):
        plain, sliced = self._pair()
        for batch in (1, 2, 4, 8):
            assert sliced.batch_latency_s(batch) \
                == plain.batch_latency_s(batch)

    def test_single_chip_stats_bit_identical(self):
        plain, sliced = self._pair()
        requests = RequestGenerator(17).poisson("cnn0", 400, 0.5)
        assert sliced.simulate(requests) == plain.simulate(requests)

    def test_zero_fault_pod_model_bit_identical(self):
        plain, sliced = self._pair()
        sliced.pod_faults = PodFaultModel(seed=5)
        requests = RequestGenerator(17).poisson("cnn0", 400, 0.5)
        assert sliced.simulate(requests) == plain.simulate(requests)

    def test_multi_chip_zero_fault_simulate_matches_plain_call(self):
        """With no pod faults, SliceSimulator.simulate IS the parent
        call — multi-chip latencies differ, but the path is shared."""
        sim = make_slice_sim(pod_faults=PodFaultModel(seed=5))
        requests = RequestGenerator(17).poisson("cnn0", 400, 0.5)
        bare = make_slice_sim()
        assert sim.simulate(requests) == bare.simulate(requests)


class TestLinkFaultTranslation:
    def test_dead_link_becomes_slice_slowdown(self):
        sim = make_slice_sim()
        links = sim.topology.num_links
        schedule = FaultSchedule(links, 2.0, down=[(0, 0.5, 1.0)])
        induced = sim.induced_schedule(schedule, 2.0)
        assert induced is not None and not induced.down
        cores = sim.point.chip.cores
        assert len(induced.slowdowns) == cores
        core, start, end, factor = induced.slowdowns[0]
        assert (start, end) == (0.5, 1.0)
        assert factor > 1.0

    def test_partition_becomes_slice_outage(self):
        sim = make_slice_sim()
        links = sim.topology.num_links
        schedule = FaultSchedule(links, 2.0,
                                 down=[(0, 0.5, 1.0), (3, 0.5, 1.0)])
        induced = sim.induced_schedule(schedule, 2.0)
        cores = sim.point.chip.cores
        assert len(induced.down) == cores
        assert induced.down[0][1:] == (0.5, 1.0)

    def test_ocs_dead_link_becomes_reconfig_outage(self):
        sim = make_slice_sim(topology=make_ring(4, kind="ocs"))
        links = sim.topology.num_links
        schedule = FaultSchedule(links, 2.0, down=[(0, 0.5, 1.5)])
        induced = sim.induced_schedule(schedule, 2.0)
        cores = sim.point.chip.cores
        assert len(induced.down) == cores
        core, start, end = induced.down[0]
        assert start == 0.5
        assert end == pytest.approx(0.5 + sim.topology.ocs_reconfig_s)

    def test_chip_schedule_merged_unchanged(self):
        sim = make_slice_sim()
        cores = sim.point.chip.cores
        chip = FaultSchedule(cores, 2.0, down=[(0, 0.1, 0.2)])
        links = sim.topology.num_links
        link = FaultSchedule(links, 2.0, down=[(0, 0.5, 1.0)])
        induced = sim.induced_schedule(link, 2.0, chip_schedule=chip)
        assert (0, 0.1, 0.2) in induced.down
        assert len(induced.slowdowns) == cores

    def test_wrong_link_count_rejected(self):
        sim = make_slice_sim()
        with pytest.raises(ValueError):
            sim.induced_schedule(FaultSchedule(2, 1.0,
                                               down=[(0, 0.0, 0.5)]), 1.0)


class TestClusterIntegration:
    def _cluster(self, schedules_for):
        spec = app_by_name("cnn0")
        slo = Slo(spec.slo_ms / 1e3)
        sims = [make_slice_sim() for _ in range(3)]
        for sim in sims[1:]:
            sim._latency_cache = sims[0]._latency_cache
            sim._shards = sims[0]._shards
            sim._state_latency = sims[0]._state_latency
        requests = RequestGenerator(23).rng.poisson_arrivals(3000.0, 0.5)
        horizon = requests[-1] + 1.0
        schedules = schedules_for(sims, horizon)
        policy = ClusterPolicy.resilient(
            slo_limit_s=slo.limit_s, offered_qps=3000.0, max_batch=8,
            replicas=3, int8_tier=True)
        return ClusterSimulator(sims, policy).simulate(
            requests, schedules=schedules)

    def test_partitioned_slice_is_ejected(self):
        def schedules_for(sims, horizon):
            links = sims[0].topology.num_links
            link = FaultSchedule(links, horizon,
                                 down=[(0, 0.0, math.inf),
                                       (3, 0.0, math.inf)])
            return [sims[0].induced_schedule(link, horizon), None, None]
        stats = self._cluster(schedules_for)
        assert stats.ejections >= 1
        assert stats.availability >= 0.97

    def test_degraded_slice_keeps_serving(self):
        def schedules_for(sims, horizon):
            links = sims[0].topology.num_links
            link = FaultSchedule(links, horizon,
                                 down=[(0, 0.0, math.inf)])
            return [sims[0].induced_schedule(link, horizon), None, None]
        stats = self._cluster(schedules_for)
        assert stats.availability >= 0.97
        assert stats.served_requests > 0


class TestPodChaosSweep:
    @pytest.fixture(scope="class")
    def rows(self):
        return pod_chaos_sweep(seed=2, duration_s=0.3)

    def test_deterministic(self, rows):
        assert rows == pod_chaos_sweep(seed=2, duration_s=0.3)

    def test_covers_the_grid(self, rows):
        kinds = {(r.topology, r.scenario, r.policy) for r in rows}
        assert len(kinds) == 2 * 5 * 2  # {torus, ocs} x scenarios x policies

    def test_kill_one_link_resilient_availability(self, rows):
        cells = [r.stats.availability for r in rows
                 if r.scenario == "kill-1-link" and r.policy == "resilient"]
        assert cells and min(cells) >= 0.97

    def test_bad_arguments_rejected(self):
        with pytest.raises(ValueError):
            pod_chaos_sweep(duration_s=0.0)
        with pytest.raises(ValueError):
            pod_chaos_sweep(slices=1)
        with pytest.raises(ValueError):
            pod_chaos_sweep(slice_chips=1)
        with pytest.raises(ValueError):
            pod_chaos_sweep(utilization=1.5)


class TestSliceAwarePlanner:
    def test_trail_reports_slice_chips_and_slice_spares(self):
        point = shared_design_point(TPUV4I)
        spec = app_by_name("cnn0")
        plan, trail = plan_resilient_fleet(point, spec, 20000.0,
                                           slice_chips=4, duration_s=0.5)
        assert trail.slice_chips == 4
        assert plan.spare_chips % 4 == 0
        assert len(trail.points) >= 1

    def test_slice_walk_deterministic(self):
        point = shared_design_point(TPUV4I)
        spec = app_by_name("cnn0")
        first = plan_resilient_fleet(point, spec, 20000.0,
                                     slice_chips=4, duration_s=0.5)
        second = plan_resilient_fleet(point, spec, 20000.0,
                                      slice_chips=4, duration_s=0.5)
        assert first == second

    def test_link_faults_cost_availability(self):
        """The same fleet needs at least as many spares once the fabric
        can partition slices (k=0 availability drops)."""
        point = shared_design_point(TPUV4I)
        spec = app_by_name("cnn0")
        _, chips_only = plan_resilient_fleet(point, spec, 20000.0,
                                             duration_s=0.5)
        _, sliced = plan_resilient_fleet(point, spec, 20000.0,
                                         slice_chips=4, duration_s=0.5)
        assert sliced.points[0][1] <= chips_only.points[0][1]

    def test_default_path_unchanged(self):
        point = shared_design_point(TPUV4I)
        spec = app_by_name("cnn0")
        implicit = plan_resilient_fleet(point, spec, 20000.0,
                                        duration_s=0.5)
        explicit = plan_resilient_fleet(point, spec, 20000.0,
                                        slice_chips=1, duration_s=0.5)
        assert implicit == explicit
