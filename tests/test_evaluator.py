"""Tests for the functional evaluator (what-bits semantics)."""

import numpy as np
import pytest

from repro.arch import TPUV2, TPUV3, TPUV4I
from repro.graph import Evaluator, GraphBuilder, Shape, evaluate_module
from repro.mlcompat import model_numerics_match
from repro.numerics import snr_db
from repro.workloads.layers import transformer_layer
from repro.workloads.models import _build_lstm

from tests.conftest import make_tiny_mlp


def attention_module(batch=2, seq=8, hidden=64, heads=4):
    b = GraphBuilder("attn")
    x = b.parameter(Shape((batch, seq, hidden)), "x")
    y = transformer_layer(b, x, heads=heads, ffn_dim=2 * hidden)
    module = b.build()
    module.set_root(y)
    return module


class TestBasics:
    def test_output_shape_matches_root(self, tiny_mlp):
        out = evaluate_module(tiny_mlp, "fp32")
        assert out.shape == tiny_mlp.root.shape.dims

    def test_deterministic(self, tiny_mlp):
        a = evaluate_module(tiny_mlp, "bf16", seed=5)
        b = evaluate_module(tiny_mlp, "bf16", seed=5)
        assert np.array_equal(a, b)

    def test_seed_changes_tensors(self, tiny_mlp):
        a = evaluate_module(tiny_mlp, "bf16", seed=1)
        b = evaluate_module(tiny_mlp, "bf16", seed=2)
        assert not np.array_equal(a, b)

    def test_unknown_arithmetic_rejected(self, tiny_mlp):
        with pytest.raises(ValueError):
            evaluate_module(tiny_mlp, "fp16")

    def test_explicit_inputs_and_weights(self):
        b = GraphBuilder("m")
        x = b.parameter(Shape((1, 2)), "x")
        w = b.constant(Shape((2, 2)), "w")
        b.dot(x, w)
        module = b.build()
        out = evaluate_module(
            module, "fp32",
            inputs={"x": np.array([[1.0, 2.0]], dtype=np.float32)},
            weights={"w": np.eye(2, dtype=np.float32)})
        assert np.allclose(out, [[1.0, 2.0]])

    def test_wrong_input_shape_rejected(self):
        b = GraphBuilder("m")
        b.parameter(Shape((1, 2)), "x")
        module = b.build()
        with pytest.raises(ValueError, match="expected"):
            evaluate_module(module, "fp32",
                            inputs={"x": np.zeros((2, 2))})

    def test_value_of_intermediate(self, tiny_mlp):
        evaluator = Evaluator(tiny_mlp, "fp32")
        evaluator.run()
        relu = [i for i in tiny_mlp.instructions if i.opcode == "relu"][0]
        assert np.all(evaluator.value_of(relu) >= 0)


class TestArithmetics:
    def test_bf16_close_to_fp32(self, tiny_mlp):
        ref = evaluate_module(tiny_mlp, "fp32", seed=3)
        bf = evaluate_module(tiny_mlp, "bf16", seed=3)
        assert snr_db(ref, bf) > 30

    def test_int8_noisier_than_bf16(self, tiny_mlp):
        ref = evaluate_module(tiny_mlp, "fp32", seed=3)
        bf = evaluate_module(tiny_mlp, "bf16", seed=3)
        q = evaluate_module(tiny_mlp, "int8", seed=3)
        assert snr_db(ref, q) < snr_db(ref, bf)
        assert snr_db(ref, q) > 10  # but still usable

    def test_bf16_outputs_are_bf16_representable(self, tiny_mlp):
        from repro.numerics.bfloat16 import is_bf16_exact

        out = evaluate_module(tiny_mlp, "bf16")
        assert np.all(is_bf16_exact(out))


class TestOpCoverage:
    def test_transformer_layer_runs_all_arithmetics(self):
        module = attention_module()
        for arithmetic in ("fp32", "bf16", "int8"):
            out = evaluate_module(module, arithmetic, seed=1)
            assert out.shape == (2, 8, 64)
            assert np.all(np.isfinite(out))

    def test_softmax_rows_sum_to_one(self):
        b = GraphBuilder("sm")
        x = b.parameter(Shape((4, 16)), "x")
        b.softmax(x)
        out = evaluate_module(b.build(), "fp32")
        assert np.allclose(out.sum(axis=-1), 1.0, atol=1e-5)
        assert np.all(out >= 0)

    def test_layernorm_normalizes(self):
        b = GraphBuilder("ln")
        x = b.parameter(Shape((4, 64)), "x")
        b.layernorm(x)
        out = evaluate_module(b.build(), "fp32")
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-4)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_lstm_executes(self):
        module = _build_lstm("tiny", 2, seq=3, hidden=16, layers=2, vocab=8)
        out = evaluate_module(module, "bf16")
        assert out.shape == (2, 8)
        assert np.all(np.isfinite(out))

    def test_conv_matches_manual(self):
        b = GraphBuilder("c")
        img = b.parameter(Shape((1, 4, 4, 1)), "img")
        filt = b.constant(Shape((1, 1, 1, 1)), "f")
        b.conv2d(img, filt)
        module = b.build()
        image = np.arange(16, dtype=np.float32).reshape(1, 4, 4, 1)
        out = evaluate_module(module, "fp32", inputs={"img": image},
                              weights={"f": np.full((1, 1, 1, 1), 2.0,
                                                    dtype=np.float32)})
        assert np.allclose(out, 2.0 * image)

    def test_strided_conv_shape(self):
        b = GraphBuilder("c")
        img = b.parameter(Shape((2, 8, 8, 3)), "img")
        filt = b.constant(Shape((3, 3, 3, 4)), "f")
        b.conv2d(img, filt, stride=2)
        out = evaluate_module(b.build(), "fp32")
        assert out.shape == (2, 4, 4, 4)

    def test_embedding_lookup_selects_rows(self):
        b = GraphBuilder("e")
        table = b.constant(Shape((10, 4)), "t")
        ids = b.parameter(Shape((1, 2), "int32"), "ids")
        b.embedding_lookup(table, ids)
        module = b.build()
        rows = np.arange(40, dtype=np.float32).reshape(10, 4)
        out = evaluate_module(
            module, "fp32",
            inputs={"ids": np.array([[3, 7]], dtype=np.int64)},
            weights={"t": rows})
        assert np.allclose(out[0, 0], rows[3])
        assert np.allclose(out[0, 1], rows[7])


class TestLesson10EndToEnd:
    def test_bf16_bit_exact_across_generations_whole_model(self):
        """The lesson's claim on a real (small) transformer."""
        module = attention_module()
        for source, target in ((TPUV2, TPUV3), (TPUV3, TPUV4I)):
            check = model_numerics_match(module, source, target)
            assert check.bit_exact
            assert check.est_quality_loss_pct == 0.0

    def test_int8_chip_shows_quality_gap(self):
        module = attention_module()
        int8_only = TPUV4I.variant("int8only", dtypes=("int8",))
        check = model_numerics_match(module, TPUV3, int8_only)
        assert not check.bit_exact
        assert check.needs_calibration
        assert check.snr_db < 60
