"""Equivalence suite: the batched grid kernel vs per-point replay.

The bit-identity contract (DESIGN.md): evaluating a grid of (program,
chip, dtype) points through :func:`repro.sim.gridkernel.evaluate_grid`
produces *exactly* what the per-point ``FastReplay`` loop produces —
cycles, every PerfCounters field, every per-level byte count, every
error — bit for bit, for all four chip generations, every supported
dtype, and hand-built corner-case programs. On top of the kernel, the
engine wrapper (:mod:`repro.engine.grid`) must keep the cache contract:
cached points never enter a batch, computed points are stored under the
per-point keys, and a grid-routed sweep is indistinguishable from the
serial loop it replaces. ``REPRO_GRIDSIM=0`` restores the per-point
path, mirroring ``REPRO_FASTSIM``.
"""

from __future__ import annotations

import dataclasses
import sys

import pytest

from repro.arch import TPUV1, TPUV2, TPUV3, TPUV4I
from repro.compiler import compile_model
from repro.compiler.pipeline import retarget_dtype
from repro.core.design_point import DesignPoint, clear_shared_design_points
from repro.core.dse import cmem_sweep, enumerate_candidates
from repro.engine.cache import EvalCache, set_cache
from repro.engine.grid import (
    _COMPILE_IRRELEVANT,
    GridJob,
    clear_grid_stats,
    compile_chip_fingerprint,
    evaluate_jobs,
    grid_stats,
    run_grid,
)
from repro.engine.lowered import clear_lowered
from repro.isa import Bundle, Instruction, Opcode, Program
from repro.obs.metrics import collecting_metrics
from repro.sim.gridkernel import (
    ENV_GRIDSIM,
    GridPoint,
    clear_grid_kernel,
    evaluate_grid,
    grid_kernel_stats,
    gridsim_disabled,
    gridsim_enabled,
)
from repro.sim.lowered import FastReplay, lower_program
from repro.util.units import MIB
from repro.workloads import app_by_name

ALL_CHIPS = (TPUV1, TPUV2, TPUV3, TPUV4I)
APPS = ("mlp0", "cnn0", "rnn0")
BATCHES = (1, 8)

# Equivalence/parity tests run under REPRO_GRIDSIM=0 too (the CI job
# does exactly that); tests asserting *batched-kernel internals* are
# meaningless with the kernel opted out and skip themselves.
requires_kernel = pytest.mark.skipif(
    not gridsim_enabled(),
    reason="grid kernel disabled via REPRO_GRIDSIM")


def _dtypes(chip):
    return tuple(d for d in ("bf16", "int8", "fp32")
                 if chip.supports_dtype(d))


def _assert_identical(reference, batched):
    """Bit-identity over cycles, every counter field, and every level."""
    assert batched.cycles == reference.cycles
    for field in dataclasses.fields(reference.counters):
        assert (getattr(batched.counters, field.name)
                == getattr(reference.counters, field.name)), field.name
    assert (batched.counters.bytes_by_level.keys()
            == reference.counters.bytes_by_level.keys())
    assert batched.counters == reference.counters
    assert batched.report == reference.report


def _replay(point: GridPoint):
    return FastReplay(point.chip).run(
        lower_program(point.program, point.chip), dtype=point.dtype)


@pytest.fixture(scope="module")
def compiled_programs():
    """{(chip.name, app, batch): (chip, program)} for the identity sweep."""
    programs = {}
    for chip in ALL_CHIPS:
        for app in APPS:
            spec = app_by_name(app)
            for batch in BATCHES:
                module = spec.build(batch)
                if not chip.supports_dtype("bf16"):  # TPUv1 is int8-only
                    module = retarget_dtype(module, "int8")
                program = compile_model(module, chip).program
                programs[(chip.name, app, batch)] = (chip, program)
    return programs


class TestBitIdentityOnWorkloads:
    def test_one_batch_matches_per_point_replay(self, compiled_programs):
        """Every (generation, app, batch, dtype) point, one kernel batch."""
        points = []
        for (_, _, _), (chip, program) in compiled_programs.items():
            for dtype in _dtypes(chip):
                points.append(GridPoint(program, chip, dtype))
        reference = [_replay(p) for p in points]
        clear_grid_kernel()
        batched = evaluate_grid(points)
        assert len(batched) == len(points)
        for ref, out in zip(reference, batched):
            _assert_identical(ref, out)
        if gridsim_enabled():
            stats = grid_kernel_stats()
            assert stats.batches == 1
            assert stats.points == len(points)
            assert stats.fallback_points == 0
            # Structure tables are shared per program, not per point.
            assert stats.structs == len(compiled_programs)

    @requires_kernel
    def test_dse_variants_share_structures(self, compiled_programs):
        """Clock/MXU variants reuse one struct; CMEM stays per-program."""
        chip, program = compiled_programs[("TPUv4i", "cnn0", 8)]
        variants = (
            chip,
            chip.variant("v4-fast", clock_hz=chip.clock_hz * 1.25),
            chip.variant("v4-wide", mxus_per_core=8),
            chip.variant("v4-slow", clock_hz=chip.clock_hz * 0.75,
                         mxus_per_core=2),
        )
        points = [GridPoint(program, variant) for variant in variants]
        clear_grid_kernel()
        batched = evaluate_grid(points)
        for point, out in zip(points, batched):
            _assert_identical(_replay(point), out)
        assert grid_kernel_stats().structs == 1


class TestBitIdentityOnCornerCases:
    """Hand-built programs that stress the kernel's closed forms."""

    def _grid_vs_replay(self, program, chip=TPUV4I, dtype="bf16"):
        point = GridPoint(program, chip, dtype)
        reference = _replay(point)
        out = evaluate_grid([point])[0]
        _assert_identical(reference, out)
        return out

    def _program(self, *bundles, generation=4):
        program = Program("hand", generation=generation)
        for bundle in bundles:
            program.append(Bundle(tuple(bundle)))
        program.append(Bundle((Instruction(Opcode.HALT),)))
        return program

    def test_dma_contention_and_engine_pool(self):
        mib = 2**20
        dmas = [Instruction(Opcode.DMA_IN, (0, (i + 1) * mib, i))
                for i in range(6)]
        program = self._program(
            dmas[:3], dmas[3:], [Instruction(Opcode.SYNC_WAIT, (5,))])
        out = self._grid_vs_replay(program)
        assert out.counters.sync_stall_cycles > 0

    def test_dma_flag_overwrite_and_rewait(self):
        program = self._program(
            [Instruction(Opcode.DMA_IN, (0, 2**20, 1)),
             Instruction(Opcode.DMA_IN, (0, 2**24, 1))],
            [Instruction(Opcode.SYNC_WAIT, (1,)),
             Instruction(Opcode.MXM, (128, 128, 128))])
        self._grid_vs_replay(program)

    def test_sync_set_then_wait_is_free(self):
        program = self._program(
            [Instruction(Opcode.SYNC_SET, (2,))],
            [Instruction(Opcode.SYNC_WAIT, (2,))],
            [Instruction(Opcode.SYNC_WAIT, (9,))])  # never set
        out = self._grid_vs_replay(program)
        assert out.counters.sync_stall_cycles == 0

    def test_mixed_units_overlap(self):
        program = self._program(
            [Instruction(Opcode.MXM, (512, 512, 512)),
             Instruction(Opcode.VADD, (65536,)),
             Instruction(Opcode.VREDUCE, (4096, 64)),
             Instruction(Opcode.SADD, (1, 2, 3))],
            [Instruction(Opcode.MXM_LOADW, (128, 128)),
             Instruction(Opcode.MXM_TRANSPOSE, (64, 0)),
             Instruction(Opcode.VMUL, (1000,))])
        out = self._grid_vs_replay(program)
        assert out.counters.scalar_ops == 1

    def test_unit_work_before_any_hard_row(self):
        """MXU/VPU rows with no preceding hard row hit the sentinel slot."""
        program = self._program(
            [Instruction(Opcode.MXM, (256, 256, 256)),
             Instruction(Opcode.VADD, (4096,))],
            [Instruction(Opcode.MXM, (128, 128, 128))],
            [Instruction(Opcode.DMA_OUT, (0, 2**20, 0))])
        self._grid_vs_replay(program)

    def test_halt_mid_program_truncates(self):
        program = Program("h", generation=4)
        program.append(Bundle((Instruction(Opcode.MXM, (128, 128, 128)),)))
        program.append(Bundle((Instruction(Opcode.HALT),
                               Instruction(Opcode.MXM, (512, 512, 512)))))
        program.append(Bundle((Instruction(Opcode.MXM, (512, 512, 512)),)))
        out = self._grid_vs_replay(program)
        assert out.counters.bundles == 2  # third bundle is dead code

    def test_empty_program_costs_one_cycle(self):
        program = Program("empty", generation=4)
        out = self._grid_vs_replay(program)
        assert out.cycles == 1

    def test_int8_on_v1(self):
        program = Program("v1", generation=1)
        program.append(Bundle((Instruction(Opcode.MXM, (256, 256, 256)),
                               Instruction(Opcode.DMA_IN, (0, 2**20, 0)))))
        self._grid_vs_replay(program, chip=TPUV1, dtype="int8")


class TestErrorParity:
    """evaluate_grid raises exactly the per-point path's errors."""

    def test_generation_mismatch(self):
        program = Program("v4", generation=4)
        with pytest.raises(ValueError) as lower_err:
            lower_program(program, TPUV3)
        with pytest.raises(ValueError) as grid_err:
            evaluate_grid([GridPoint(program, TPUV3)])
        assert str(grid_err.value) == str(lower_err.value)

    def test_unsupported_dtype(self):
        program = Program("v2", generation=2)
        with pytest.raises(ValueError, match="does not support"):
            evaluate_grid([GridPoint(program, TPUV2, dtype="int8")])

    def test_unreachable_dma_level(self):
        # TPUv1 has no CMEM, so a CMEM DMA (level 1) has no engine pool.
        program = Program("bad", generation=1)
        program.append(Bundle((Instruction(Opcode.DMA_IN, (1, 1024, 0)),)))
        with pytest.raises(ValueError) as lower_err:
            lower_program(program, TPUV1)
        clear_grid_kernel()
        with pytest.raises(ValueError) as grid_err:
            evaluate_grid([GridPoint(program, TPUV1, dtype="int8")])
        assert str(grid_err.value) == str(lower_err.value)

    def test_error_raised_before_later_points_evaluate(self):
        good = Program("good", generation=4)
        bad = Program("bad", generation=3)
        with pytest.raises(ValueError, match="Recompile"):
            evaluate_grid([GridPoint(bad, TPUV4I), GridPoint(good, TPUV4I)])


class TestGating:
    def test_env_gate(self, monkeypatch):
        monkeypatch.setenv(ENV_GRIDSIM, "0")
        assert not gridsim_enabled()
        monkeypatch.setenv(ENV_GRIDSIM, "off")
        assert not gridsim_enabled()
        monkeypatch.setenv(ENV_GRIDSIM, "1")
        assert gridsim_enabled()

    @requires_kernel
    def test_context_manager_is_reentrant(self):
        assert gridsim_enabled()
        with gridsim_disabled():
            assert not gridsim_enabled()
            with gridsim_disabled():
                assert not gridsim_enabled()
            assert not gridsim_enabled()
        assert gridsim_enabled()

    def test_disabled_kernel_falls_back_per_point(self):
        program = Program("gate", generation=4)
        program.append(Bundle((Instruction(Opcode.MXM, (128, 128, 128)),)))
        point = GridPoint(program, TPUV4I)
        clear_grid_kernel()
        with gridsim_disabled():
            fallback = evaluate_grid([point])
        stats = grid_kernel_stats()
        assert stats.fallback_points == 1
        assert stats.batches == 0
        _assert_identical(_replay(point), fallback[0])


class TestEngineGrid:
    """run_grid / evaluate_jobs: cache exclusion, merge, and parity."""

    def _point(self):
        return DesignPoint(TPUV4I, cache=EvalCache())

    def test_run_grid_matches_per_point_runs(self):
        spec = app_by_name("mlp0")
        jobs = [GridJob(self._point(), spec, batch, budget)
                for batch in (1, 4)
                for budget in (None, 0, 64 * MIB)]
        results = run_grid(jobs)
        with gridsim_disabled():
            for job, result in zip(jobs, results):
                expected = self._point().run(job.spec, job.resolved_batch,
                                             job.cmem_budget_bytes)
                _assert_identical(expected, result)

    @requires_kernel
    def test_cached_jobs_never_enter_the_batch(self):
        spec = app_by_name("mlp0")
        point = self._point()
        warm = point.run(spec, 4)
        clear_grid_stats()
        results = run_grid([GridJob(point, spec, 4), GridJob(point, spec, 8)])
        stats = grid_stats()
        assert stats.cache_hits == 1
        assert stats.batched_points == 1
        assert results[0] is warm
        # A second pass over the same jobs is all cache, no new batch.
        again = run_grid([GridJob(point, spec, 4), GridJob(point, spec, 8)])
        assert grid_stats().batches == stats.batches
        assert again == results

    @requires_kernel
    def test_duplicate_jobs_share_one_kernel_point(self):
        spec = app_by_name("mlp0")
        point = self._point()
        clear_grid_stats()
        results = run_grid([GridJob(point, spec, 4)] * 3)
        assert grid_stats().batched_points == 1
        assert results[0] is results[1] is results[2]

    def test_grid_warmed_cache_serves_the_per_point_path(self):
        spec = app_by_name("mlp0")
        point = self._point()
        results = run_grid([GridJob(point, spec, 4)])
        assert point.run(spec, 4) is results[0]

    def test_evaluate_jobs_matches_per_point_evaluate(self):
        spec = app_by_name("cnn0")
        jobs = [GridJob(self._point(), spec, batch) for batch in (1, 2, 8)]
        evaluations = evaluate_jobs(jobs)
        with gridsim_disabled():
            expected = [self._point().evaluate(job.spec, job.batch)
                        for job in jobs]
        assert evaluations == expected
        # And the grid-stored records serve point.evaluate afterwards.
        assert jobs[0].point.evaluate(spec, 1) == evaluations[0]

    def test_fallback_env_runs_per_point(self, monkeypatch):
        spec = app_by_name("mlp0")
        point = self._point()
        monkeypatch.setenv(ENV_GRIDSIM, "0")
        clear_grid_stats()
        results = run_grid([GridJob(point, spec, 4)])
        assert grid_stats().fallback_points == 1
        assert grid_stats().batches == 0
        assert results[0] is point.run(spec, 4)

    @requires_kernel
    def test_grid_metrics_counted(self):
        spec = app_by_name("mlp0")
        point = self._point()
        with collecting_metrics() as registry:
            run_grid([GridJob(point, spec, 4), GridJob(point, spec, 4)])
            assert registry.counter("engine.grid.points").value == 2
            assert registry.counter("engine.grid.batches").value == 1
            assert registry.counter("engine.grid.batched_points").value == 1

    def test_stats_describe_mentions_sharing(self):
        clear_grid_stats()
        text = grid_stats().describe()
        assert "batches" in text and "compiles shared" in text

    def test_max_batch_under_slo_matches_disabled_path(self):
        spec = app_by_name("mlp0")
        grid_answer = self._point().max_batch_under_slo(
            spec, spec.slo_ms / 1e3)
        with gridsim_disabled():
            per_point = self._point().max_batch_under_slo(
                spec, spec.slo_ms / 1e3)
        assert grid_answer == per_point
        with pytest.raises(ValueError, match="SLO"):
            self._point().max_batch_under_slo(spec, 0.0)


class TestSweepEquivalence:
    def test_grid_routed_candidate_sweep_matches_serial(self):
        from repro.core.dse import evaluate_candidates
        chips = enumerate_candidates()
        previous = set_cache(EvalCache())
        try:
            clear_shared_design_points()
            clear_lowered()
            with gridsim_disabled():
                serial = evaluate_candidates(chips, workers=1)
            set_cache(EvalCache())
            clear_shared_design_points()
            clear_lowered()
            clear_grid_kernel()
            routed = evaluate_candidates(chips, workers=1)
            assert routed == serial
        finally:
            set_cache(previous)
            clear_shared_design_points()

    def test_cmem_sweep_matches_per_point(self):
        spec = app_by_name("mlp0")
        capacities = [0, 32 * MIB, 128 * MIB]
        previous = set_cache(EvalCache())
        try:
            clear_shared_design_points()
            grid = cmem_sweep(spec, capacities)
            set_cache(EvalCache())
            clear_shared_design_points()
            with gridsim_disabled():
                per_point = cmem_sweep(spec, capacities)
            assert grid == per_point
        finally:
            set_cache(previous)
            clear_shared_design_points()


class TestCmemSweepValidation:
    """Regression: validation is identical on every dispatch path."""

    @pytest.mark.parametrize("workers", [1, 2, None])
    def test_negative_capacity_raises_before_any_dispatch(self, workers):
        spec = app_by_name("mlp0")
        with collecting_metrics() as registry:
            with pytest.raises(ValueError, match="non-negative"):
                cmem_sweep(spec, [64 * MIB, -1], workers=workers)
            # Rejected before the sweep counted (or evaluated) anything.
            assert registry.counter("engine.sweeps.cmem_points").value == 0

    def test_engine_sweep_validates_identically(self):
        from repro.engine.sweeps import cmem_capacity_sweep
        spec = app_by_name("mlp0")
        for workers in (1, 2):
            with pytest.raises(ValueError, match="non-negative"):
                cmem_capacity_sweep(spec, [-5], TPUV4I, 4, workers=workers)


class TestCompileContentFingerprint:
    """The dedupe's invariant: excluded fields never change compiled code."""

    _EXCLUDED_OVERRIDES = (
        {"clock_hz": TPUV4I.clock_hz * 1.3},
        {"mxus_per_core": 8},
        {"tdp_w": 500.0},
        {"idle_w": 99.0},
        {"cooling": "liquid"},
    )

    def test_override_set_matches_exclusion_list(self):
        covered = {"name"} | {k for o in self._EXCLUDED_OVERRIDES for k in o}
        assert covered == set(_COMPILE_IRRELEVANT)

    @pytest.mark.parametrize("override", _EXCLUDED_OVERRIDES,
                             ids=lambda o: next(iter(o)))
    def test_excluded_field_preserves_compiled_content(self, override):
        variant = TPUV4I.variant("fp-variant", **override)
        assert (compile_chip_fingerprint(variant)
                == compile_chip_fingerprint(TPUV4I))
        spec = app_by_name("mlp0")
        base = DesignPoint(
            TPUV4I, cache=EvalCache(enabled=False)).compiled(spec, 4)
        other = DesignPoint(
            variant, cache=EvalCache(enabled=False)).compiled(spec, 4)
        assert base.program.signature() == other.program.signature()
        assert (base.memory.cmem_hit_fraction
                == other.memory.cmem_hit_fraction)

    def test_compile_relevant_field_changes_fingerprint(self):
        smaller = TPUV4I.variant("fp-cmem",
                                 cmem_bytes=TPUV4I.cmem_bytes // 2)
        assert (compile_chip_fingerprint(smaller)
                != compile_chip_fingerprint(TPUV4I))


class TestLoweredArrays:
    """Direct contract tests for LoweredProgram.arrays()."""

    def _lowered(self):
        program = Program("cols", generation=4)
        program.append(Bundle((Instruction(Opcode.DMA_IN, (0, 2**20, 1)),)))
        program.append(Bundle((Instruction(Opcode.SYNC_WAIT, (1,)),
                               Instruction(Opcode.MXM, (128, 128, 128)),
                               Instruction(Opcode.VADD, (4096,)))))
        program.append(Bundle((Instruction(Opcode.HALT),)))
        return lower_program(program, TPUV4I)

    def test_column_names_and_dtypes(self):
        np = pytest.importorskip("numpy")
        columns = self._lowered().arrays()
        assert set(columns) == {"kind", "a0", "a1", "a2", "f"}
        for name in ("kind", "a0", "a1", "a2"):
            assert columns[name].dtype == np.int64, name
        assert columns["f"].dtype == np.float64

    def test_rows_roundtrip_in_order(self):
        pytest.importorskip("numpy")
        lowered = self._lowered()
        columns = lowered.arrays()
        assert all(len(col) == len(lowered) for col in columns.values())
        for i, (kind, a0, a1, a2, f) in enumerate(lowered.rows):
            assert columns["kind"][i] == kind
            assert columns["a0"][i] == a0
            assert columns["a1"][i] == a1
            assert columns["a2"][i] == a2
            assert columns["f"][i] == f

    def test_empty_program_exports_empty_columns(self):
        pytest.importorskip("numpy")
        lowered = lower_program(Program("empty", generation=4), TPUV4I)
        columns = lowered.arrays()
        assert all(len(col) == 0 for col in columns.values())

    def test_numpy_absent_returns_none(self, monkeypatch):
        lowered = self._lowered()
        monkeypatch.setitem(sys.modules, "numpy", None)
        assert lowered.arrays() is None
