"""Tests for bf16/int8 numerics and error metrics (Lesson 7/10 substrate)."""

import numpy as np
import pytest

from repro.numerics import (
    BF16_EPS,
    QuantParams,
    bf16_matmul,
    calibrate,
    cosine_similarity,
    dequantize,
    int8_matmul,
    max_rel_error,
    quality_loss_proxy,
    quantize,
    snr_db,
    to_bf16,
)
from repro.numerics.bfloat16 import is_bf16_exact
from repro.util.rng import DeterministicRng


class TestBfloat16:
    def test_exact_values_pass_through(self):
        vals = np.array([0.0, 1.0, -2.0, 0.5, 256.0], dtype=np.float32)
        assert np.array_equal(to_bf16(vals), vals)

    def test_rounding_error_bounded_by_eps(self):
        rng = DeterministicRng(1)
        vals = rng.normal_array((1000,))
        err = np.abs(to_bf16(vals) - vals)
        assert np.all(err <= BF16_EPS * np.abs(vals) + 1e-30)

    def test_round_to_nearest_even(self):
        # 1 + eps/2 is exactly between 1.0 and 1+eps; ties go to even (1.0).
        val = np.float32(1.0 + BF16_EPS / 2)
        assert to_bf16(np.array([val]))[0] == np.float32(1.0)

    def test_nan_preserved(self):
        out = to_bf16(np.array([np.nan], dtype=np.float32))
        assert np.isnan(out[0])

    def test_idempotent(self):
        rng = DeterministicRng(2)
        once = to_bf16(rng.normal_array((100,)))
        assert np.array_equal(to_bf16(once), once)

    def test_is_bf16_exact(self):
        assert is_bf16_exact(np.array([1.0], dtype=np.float32))[0]
        assert not is_bf16_exact(np.array([1.0 + BF16_EPS / 3],
                                          dtype=np.float32))[0]

    def test_matmul_deterministic_across_calls(self):
        """The Lesson 10 property: identical bits every time."""
        rng = DeterministicRng(3)
        a, b = rng.normal_array((32, 32)), rng.normal_array((32, 32))
        assert np.array_equal(bf16_matmul(a, b), bf16_matmul(a, b))

    def test_matmul_close_to_fp32(self):
        rng = DeterministicRng(4)
        a, b = rng.normal_array((64, 64)), rng.normal_array((64, 64))
        assert snr_db(a @ b, bf16_matmul(a, b)) > 35


class TestInt8:
    def test_quantize_roundtrip_coarse(self):
        params = QuantParams(scale=0.1)
        vals = np.array([0.0, 1.0, -1.0, 5.0], dtype=np.float32)
        back = dequantize(quantize(vals, params), params)
        assert np.allclose(back, vals, atol=0.06)

    def test_saturation(self):
        params = QuantParams(scale=0.01)
        q = quantize(np.array([100.0, -100.0], dtype=np.float32), params)
        assert q.tolist() == [127, -127]

    def test_calibrate_percentile_clips_outliers(self):
        vals = np.concatenate([np.ones(10_000), [1000.0]]).astype(np.float32)
        full = calibrate(vals, percentile=100)
        clipped = calibrate(vals, percentile=99.9)
        assert clipped.scale < full.scale / 100

    def test_calibrate_validations(self):
        with pytest.raises(ValueError):
            calibrate(np.array([]))
        with pytest.raises(ValueError):
            calibrate(np.ones(4), percentile=0)

    def test_zero_tensor_calibrates(self):
        params = calibrate(np.zeros(16, dtype=np.float32))
        assert params.scale > 0

    def test_params_validation(self):
        with pytest.raises(ValueError):
            QuantParams(scale=0.0)

    def test_int8_matmul_approximates_fp32(self):
        rng = DeterministicRng(5)
        a, b = rng.normal_array((64, 64)), rng.normal_array((64, 64))
        out = int8_matmul(a, b, calibrate(a), calibrate(b))
        assert snr_db(a @ b, out) > 20

    def test_int8_noisier_than_bf16(self):
        """Lesson 7's quantitative core."""
        rng = DeterministicRng(6)
        a, b = rng.normal_array((64, 64)), rng.normal_array((64, 64))
        ref = a @ b
        assert (snr_db(ref, bf16_matmul(a, b))
                > snr_db(ref, int8_matmul(a, b, calibrate(a), calibrate(b))))


class TestErrorMetrics:
    def test_snr_identical_is_inf(self):
        x = np.ones(8)
        assert snr_db(x, x) == float("inf")

    def test_snr_shape_mismatch(self):
        with pytest.raises(ValueError):
            snr_db(np.ones(3), np.ones(4))

    def test_max_rel_error(self):
        assert max_rel_error(np.array([2.0]), np.array([2.2])) == pytest.approx(0.1)

    def test_cosine_similarity_bounds(self):
        x = np.array([1.0, 0.0])
        assert cosine_similarity(x, x) == pytest.approx(1.0)
        assert cosine_similarity(x, np.array([0.0, 1.0])) == pytest.approx(0.0)

    def test_quality_proxy_monotone(self):
        snrs = [50, 40, 30, 20, 10, 0]
        losses = [quality_loss_proxy(s) for s in snrs]
        assert losses == sorted(losses)
        assert losses[0] == 0.0
        assert losses[-1] <= 50.0
