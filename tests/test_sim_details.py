"""Detailed tests for the simulator internals: traces, reports, stalls."""

import pytest

from repro.arch import TPUV4I
from repro.compiler import RELEASES, compile_model
from repro.isa import Bundle, Instruction, Opcode, Program
from repro.sim import TensorCoreSim, Trace, TraceEvent
from repro.sim.perf import PerfCounters, build_report

from tests.conftest import make_tiny_mlp


class TestTrace:
    def test_capacity_truncates_silently(self):
        trace = Trace(capacity=3)
        for index in range(5):
            trace.record(TraceEvent(index, index + 1, "mxu", "mxm"))
        assert len(trace.events) == 3
        assert trace.truncated

    def test_busy_cycles_by_unit(self):
        trace = Trace()
        trace.record(TraceEvent(0, 10, "mxu", "mxm"))
        trace.record(TraceEvent(5, 8, "vpu", "vadd"))
        assert trace.busy_cycles("mxu") == 10
        assert trace.busy_cycles("vpu") == 3
        assert trace.last_cycle() == 10

    def test_render_limits(self):
        trace = Trace()
        for index in range(50):
            trace.record(TraceEvent(index, index + 1, "mxu", "mxm"))
        text = trace.render(limit=5)
        assert "45 more events" in text


class TestPerfReport:
    def test_zero_cycles_rejected(self):
        with pytest.raises(ValueError):
            build_report(TPUV4I, "x", PerfCounters())

    def test_counters_accumulate_bytes(self):
        counters = PerfCounters()
        counters.add_bytes("hbm", 10)
        counters.add_bytes("hbm", 5)
        assert counters.bytes_by_level == {"hbm": 15}

    def test_report_derives_rates(self):
        counters = PerfCounters(cycles=1_050_000, macs=10**9,
                                mxu_busy_cycles=500_000)
        report = build_report(TPUV4I, "x", counters)
        assert report.seconds == pytest.approx(0.001)
        assert report.achieved_tops == pytest.approx(2.0, rel=0.01)
        assert report.mxu_utilization == pytest.approx(500_000 / 1_050_000)
        assert report.tops_per_watt > 0
        assert "x on TPUv4i" in report.describe()

    def test_queries_per_second(self):
        counters = PerfCounters(cycles=1_050_000, macs=1)
        report = build_report(TPUV4I, "x", counters)
        assert report.queries_per_second == pytest.approx(1000.0)

    def test_zero_second_report_rates_are_finite(self):
        # Regression: a zero-second report used to return inf qps.
        # build_report refuses zero cycles, but a hand-built report
        # (deserialization, synthetic tests) must still stay finite.
        import dataclasses
        import math

        counters = PerfCounters(cycles=1_050_000, macs=1)
        report = build_report(TPUV4I, "x", counters)
        degenerate = dataclasses.replace(report, seconds=0.0)
        assert degenerate.queries_per_second == 0.0
        assert math.isfinite(degenerate.queries_per_second)


class TestSimulatorEdgeCases:
    def _program(self, *instructions):
        program = Program("hand", generation=4)
        for inst in instructions:
            program.append(Bundle((inst,)))
        program.append(Bundle((Instruction(Opcode.HALT),)))
        return program

    def test_wait_on_never_set_flag_is_free(self):
        program = self._program(Instruction(Opcode.SYNC_WAIT, (7,)))
        result = TensorCoreSim(TPUV4I).run(program)
        assert result.counters.sync_stall_cycles == 0

    def test_dma_then_wait_stalls(self):
        program = self._program(
            Instruction(Opcode.DMA_IN, (0, 64 * 2**20, 3)),  # 64 MiB from HBM
            Instruction(Opcode.SYNC_WAIT, (3,)),
        )
        result = TensorCoreSim(TPUV4I).run(program)
        assert result.counters.sync_stall_cycles > 10_000

    def test_back_to_back_mxms_serialize_on_mxu(self):
        one = self._program(Instruction(Opcode.MXM, (512, 512, 512)))
        two = self._program(Instruction(Opcode.MXM, (512, 512, 512)),
                            Instruction(Opcode.MXM, (512, 512, 512)))
        sim = TensorCoreSim(TPUV4I)
        assert sim.run(two).cycles >= 2 * sim.run(one).cycles - 4

    def test_vector_and_matrix_overlap(self):
        """Independent VPU work hides behind a long matmul."""
        mxm_only = self._program(Instruction(Opcode.MXM, (2048, 2048, 2048)))
        mixed = self._program(Instruction(Opcode.MXM, (2048, 2048, 2048)),
                              Instruction(Opcode.VADD, (100_000,)))
        sim = TensorCoreSim(TPUV4I)
        assert sim.run(mixed).cycles <= sim.run(mxm_only).cycles + 10

    def test_scalar_ops_counted(self):
        program = self._program(Instruction(Opcode.SADD, (1, 2, 3)))
        result = TensorCoreSim(TPUV4I).run(program)
        assert result.counters.scalar_ops == 1

    def test_mxm_loadw_occupies_mxu(self):
        program = self._program(Instruction(Opcode.MXM_LOADW, (128, 128)))
        result = TensorCoreSim(TPUV4I).run(program)
        assert result.counters.mxu_busy_cycles >= 128

    def test_halt_stops_execution(self):
        program = Program("h", generation=4)
        program.append(Bundle((Instruction(Opcode.HALT),)))
        program.append(Bundle((Instruction(Opcode.MXM, (512, 512, 512)),)))
        result = TensorCoreSim(TPUV4I).run(program)
        assert result.counters.macs == 0

    def test_fresh_state_between_runs(self, tiny_mlp):
        sim = TensorCoreSim(TPUV4I)
        program = compile_model(tiny_mlp, TPUV4I).program
        first = sim.run(program)
        second = sim.run(program)
        assert first.cycles == second.cycles
        assert (first.counters.bytes_by_level
                == second.counters.bytes_by_level)
