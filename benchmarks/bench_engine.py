"""BENCH: the evaluation engine itself (serial vs parallel vs warm).

Times the default DSE sweep (``enumerate_candidates`` x
``DEFAULT_DSE_APPS``) through four paths — pre-engine serial, engine
serial cold, engine parallel cold, and warm cache — asserts they produce
identical candidates, and writes the record to ``BENCH_engine.json`` at
the repository root so the speedup is tracked across PRs.
"""

from __future__ import annotations

import pathlib

from repro.engine.bench import (
    render_benchmark,
    run_engine_benchmark,
    write_benchmark,
)

from benchmarks.conftest import record, run_once

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def test_engine_benchmark(benchmark):
    # workers=None sizes the pool from CPU affinity, so the recorded
    # numbers are what this machine can actually deliver.
    result = run_once(benchmark, lambda: run_engine_benchmark(workers=None))
    text = render_benchmark(result)
    record("BENCH_engine", text)
    write_benchmark(result, REPO_ROOT / "BENCH_engine.json")

    assert result["deterministic"], (
        "parallel/cached sweeps must match the serial path bit for bit")
    assert result["fast_sim_identical"], (
        "lowered replay must match the interpreter bit for bit")
    # Warm cache must make the sweep at least 5x cheaper than cold.
    assert result["serial_cold_s"] >= 5 * result["warm_s"]
    # The engine's cold sweep must not lose to the pre-engine serial path
    # (on multi-core machines the parallel margin is much larger).
    assert result["parallel_cold_s"] < result["serial_cold_s"]
    # The honest headline: parallel must also not lose to the engine's
    # *own* serial path — the sweeper falls back to serial when fan-out
    # is a loss, so the worst case is parity (plus timing noise).
    assert (result["parallel_cold_s"]
            <= 1.25 * result["engine_serial_cold_s"])
    # The lowered-IR replay kernel: >= 2x over the interpreter even with
    # a cold lowering on every program (the tentpole acceptance bar).
    assert result["speedup_fast_vs_interp"] >= 2.0
    # Fault injection: the seeded sweep must reproduce itself exactly,
    # and a zero-fault model must reproduce the baseline bit for bit.
    assert result["fault_determinism"], (
        "same seed must yield identical faulted serving stats")
    assert result["zero_fault_identical"], (
        "a zero-fault model must be bit-identical to the faultless path")
    # Observability: instrumentation may never perturb results, traces
    # must serialize byte-identically, and the disabled guards must cost
    # (analytically bounded) under 2% of the uninstrumented wall time.
    assert result["obs_identical"], (
        "metrics-on and metrics-off runs must be bit-identical")
    assert result["trace_deterministic"], (
        "two identical runs must export byte-identical Chrome traces")
    assert result["obs_disabled_overhead_pct"] < 2.0, (
        f"disabled-guard overhead bound "
        f"{result['obs_disabled_overhead_pct']}% >= 2%")
    # Cluster resilience: the chaos sweep must reproduce itself exactly,
    # the one-replica passthrough cluster must be bit-identical to the
    # plain serving simulator, and the resilient policy must keep an
    # N+1 cluster available through a whole replica dying.
    assert result["cluster_determinism"], (
        "same seed must yield identical chaos-sweep rows")
    assert result["cluster_zero_fault_identical"], (
        "a 1-replica passthrough cluster must match plain serving stats "
        "bit for bit")
    assert result["cluster_kill1_availability"] >= 0.97, (
        f"resilient policy availability with one replica killed: "
        f"{result['cluster_kill1_availability']:.1%} < 97%")
    # Pod-scale sharding: the pod chaos sweep must reproduce itself
    # exactly, a 1-chip zero-link-fault slice must be bit-identical to
    # the plain serving simulator, and the resilient policy must keep a
    # slice-sharded cluster available through a dead ICI link.
    assert result["pod_determinism"], (
        "same seed must yield identical pod chaos-sweep rows")
    assert result["pod_identity"], (
        "a 1-chip slice with zero link faults must match plain serving "
        "stats bit for bit")
    assert result["pod_kill1_link_availability"] >= 0.97, (
        f"resilient policy availability with one ICI link killed: "
        f"{result['pod_kill1_link_availability']:.1%} < 97%")
    # The vectorized grid kernel: bit-identical to the per-point replay
    # on a 200+-point candidate grid, >= 5x over per-point replay, and
    # >= 10x end-to-end over the engine's own serial sweep (on >= 100
    # points the per-chip recompiles the kernel dedupes dominate).
    assert result["grid_identical"], (
        "batched grid kernel must match per-point replay bit for bit")
    assert result["grid_sweep_identical"], (
        "grid-routed sweep must match the engine serial sweep exactly")
    assert result["grid_sweep_points"] >= 100
    assert result["speedup_grid_vs_fast"] >= 5.0, (
        f"grid kernel speedup {result['speedup_grid_vs_fast']}x < 5x")
    assert result["speedup_grid_vs_engine_serial"] >= 10.0, (
        f"grid sweep speedup "
        f"{result['speedup_grid_vs_engine_serial']}x < 10x")
    # The vectorized serving-replay kernel: bit-identical to the event
    # loops on every chaos-sweep row at 10x the cluster phase's traffic,
    # and >= 5x faster (the tentpole acceptance bar).
    assert result["fastserve_identical"], (
        "serving-replay kernel must match the event loops bit for bit "
        "on every chaos-sweep row")
    assert result["speedup_fastserve_vs_event"] >= 5.0, (
        f"serving replay speedup "
        f"{result['speedup_fastserve_vs_event']}x < 5x")
    # Generative serving: the continuous-batching sweep must reproduce
    # itself exactly, decode must land memory-bound (operational
    # intensity left of the ridge point) on every swept generation, and
    # prefill/decode must price separately (phase-aware cache keys).
    assert result["llm_determinism"], (
        "same seed must yield identical generative-sweep rows")
    assert result["llm_decode_memory_bound"], (
        "decode phase must be memory-bound (ops/byte below the ridge) "
        "on every swept chip generation")
    assert result["llm_phase_split"], (
        "prefill and decode must produce distinct priced latencies")
    assert result["llm_tokens"] > 0
    # Generative recovery: the zero-checkpoint zero-fault policy must be
    # bit-identical to running with no policy at all, snapshot bytes
    # must flow through the HBM/host traffic ledger at the KV footprint,
    # the chaos sweep must reproduce itself exactly, and checkpointed
    # recovery must strictly beat scratch re-prefill on goodput (under
    # mid-step kills) and served requests (under a permanent core death
    # with migration).
    assert result["llm_zero_ckpt_identical"], (
        "a zero-checkpoint RecoveryPolicy under zero faults must be "
        "bit-identical to the plain simulator")
    assert result["llm_snapshot_ledger"], (
        "snapshot bytes must land in the hbm and host traffic ledger "
        "at exactly the KV-cache footprint")
    assert result["llm_chaos_determinism"], (
        "same seed must yield identical chaos-sweep rows")
    assert result["llm_recovery_goodput_gain"], (
        f"checkpointed goodput {result['llm_kill_goodput_ckpt']} must "
        f"strictly beat scratch {result['llm_kill_goodput_scratch']} "
        "under mid-step kills")
    assert result["llm_recovery_served_gain"], (
        f"checkpointed+migrated served {result['llm_outage_served_ckpt']} "
        f"must strictly beat scratch {result['llm_outage_served_scratch']} "
        "under a permanent core death")
    assert result["llm_migrated"] > 0, (
        "the outage scenario must actually migrate sequences")
