"""E10 (paper figure): performance vs CMEM capacity.

Sweeps the weight allocator's CMEM budget from 0 to the physical 128 MiB
for four representative apps. The paper's shape: steep speedup while the
hot weight working set is moving on-chip, then a plateau once it fits —
the curve that justified stopping at 128 MiB.
"""

from repro.core import cmem_sweep
from repro.util.tables import Table
from repro.util.units import MIB
from repro.workloads import app_by_name

from benchmarks.conftest import record, run_once

APPS = ("mlp1", "cnn0", "rnn0", "rnn1")
CAPACITIES_MIB = (0, 16, 32, 64, 96, 128)


def build_figure() -> str:
    table = Table(["app"] + [f"{c} MiB" for c in CAPACITIES_MIB]
                  + ["speedup 0->128"],
                  title="Figure: latency (ms) vs CMEM capacity")
    for name in APPS:
        spec = app_by_name(name)
        sweep = cmem_sweep(spec, [c * MIB for c in CAPACITIES_MIB])
        latencies = [l for _, l in sweep]
        table.add_row([name] + [f"{l * 1e3:.2f}" for l in latencies]
                      + [f"{latencies[0] / latencies[-1]:.2f}x"])
    return table.render()


def test_fig_cmem_capacity(benchmark):
    text = run_once(benchmark, build_figure)
    record("E10_fig_cmem_sweep", text)
    assert "128 MiB" in text
