"""E18 (Lesson 3 applied): sizing a serving fleet per generation.

For a fixed production target — 50k qps of cnn0, 20k qps of bert0, both
under their SLOs — size the fleet on each bf16 generation and price it.
The chip that wins is the one that minimizes lifetime dollars per served
qps, which is TPUv4i by a wide margin: the quantitative close of the
perf/TCO argument.
"""

from repro.serving import plan_fleet
from repro.util.tables import Table
from repro.workloads import app_by_name

from benchmarks.conftest import record, run_once

TARGETS = (("cnn0", 50_000.0), ("bert0", 20_000.0))


def build_table(points) -> str:
    table = Table([
        "app", "target qps", "chip", "SLO batch", "qps/chip", "chips",
        "fleet kW", "fleet 3yr TCO $", "$ per k-qps",
    ], title="Table: fleet sizing at fixed service targets")
    for app_name, target in TARGETS:
        spec = app_by_name(app_name)
        for point in points:
            plan = plan_fleet(point, spec, target)
            table.add_row([
                app_name, target, plan.chip, plan.slo_batch,
                plan.per_chip_qps, plan.chips, plan.fleet_power_w / 1000.0,
                plan.fleet_tco_usd, plan.cost_per_kqps_usd,
            ])
    return table.render()


def test_table_fleet_sizing(benchmark, v2_point, v3_point, v4i_point):
    text = run_once(benchmark,
                    lambda: build_table((v2_point, v3_point, v4i_point)))
    record("E18_table_fleet", text)
    assert "chips" in text
