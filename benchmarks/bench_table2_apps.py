"""E2 (paper Table 2): the eight production inference apps.

Derives every column from the built models: parameter footprint,
operational intensity, FLOPs per inference, whether the weights fit CMEM,
and the latency SLO the serving experiments enforce.
"""

from repro.arch import TPUV4I
from repro.util.tables import Table
from repro.util.units import MIB
from repro.workloads import PRODUCTION_APPS

from benchmarks.conftest import record, run_once


def build_table() -> str:
    table = Table([
        "app", "family", "nonlinearity", "weights MiB", "fits CMEM",
        "GFLOP/inf", "ops:byte", "batch", "SLO ms",
    ], title="Table 2: production inference application characteristics")
    for spec in PRODUCTION_APPS:
        module = spec.build(spec.default_batch)
        weights_mib = module.total_weight_bytes() / MIB
        table.add_row([
            spec.name,
            spec.category,
            spec.nonlinearity,
            weights_mib,
            weights_mib <= TPUV4I.cmem_bytes / MIB,
            module.total_flops() / spec.default_batch / 1e9,
            module.operational_intensity(),
            spec.default_batch,
            spec.slo_ms,
        ])
    return table.render()


def test_table2_production_apps(benchmark):
    text = run_once(benchmark, build_table)
    record("E2_table2_apps", text)
    assert "bert1" in text
