"""E5 (paper figure, Lesson 1): semiconductor technology advances unequally.

Prints the improvement of logic density, SRAM density, wire speed, and MAC
energy efficiency across 45nm -> 5nm, normalized to 45nm. The diverging
curves are the lesson: compute got nearly free; wires and SRAM did not.
"""

from repro.tech import relative_improvement
from repro.util.tables import Table

from benchmarks.conftest import record, run_once


def build_figure() -> str:
    series = relative_improvement()
    nodes = series[0].nodes
    table = Table(["metric"] + [str(n) for n in nodes],
                  title="Figure (L1): improvement vs 45nm, by metric")
    for entry in series:
        table.add_row([entry.metric] + [f"{v:.2f}x" for v in entry.values])

    logic = series[0].final_improvement()
    sram = series[1].final_improvement()
    wire = series[2].final_improvement()
    footer = (f"at 5nm: logic {logic:.1f}x, SRAM {sram:.1f}x, wire speed "
              f"{wire:.2f}x -> logic outruns SRAM by "
              f"{logic / sram:.1f}x and wires regress")
    return table.render() + "\n" + footer


def test_fig_unequal_scaling(benchmark):
    text = run_once(benchmark, build_figure)
    record("E5_fig_tech_scaling", text)
    assert "logic" in text
