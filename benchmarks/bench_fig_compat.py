"""E13 (paper Lesson 2): binary vs compiler compatibility, as a matrix.

For every (source, target) generation pair: does the compiled binary
decode on the target (it never does across generations), and does HLO
recompilation succeed (it always does, with an int8 retarget for TPUv1)?
"""

from repro.arch import GENERATIONS, TPUV2, TPUV3, TPUV4I
from repro.compiler import migrate_model
from repro.util.tables import Table
from repro.workloads import app_by_name

from benchmarks.conftest import record, run_once


def build_matrix() -> str:
    module = app_by_name("cnn0").build(1)
    chips = (TPUV2, TPUV3, TPUV4I)
    table = Table(["source -> target", "binary ports?", "recompile works?",
                   "dtype retarget", "notes"],
                  title="Figure: cross-generation deployment matrix (cnn0)")
    for source in chips:
        for target in GENERATIONS:
            report = migrate_model(module, source, target)
            table.add_row([
                f"{source.name} -> {target.name}",
                report.binary_portable,
                report.recompiled,
                report.retargeted_dtype or "-",
                report.notes[:58],
            ])
    return table.render()


def test_fig_compat_matrix(benchmark):
    text = run_once(benchmark, build_matrix)
    record("E13_fig_compat", text)
    assert "->" in text
