"""E16 (paper deployment discussion): pipeline scaling over the ICI ring.

TPUv4i boards carry four ICI-linked chips for models that outgrow one
chip (Lesson 5 guarantees they will). Pipelines bert1 and rnn1 — both
CMEM-overflowing — across 1/2/4 chips. The shape to reproduce: throughput
scales superlinearly while weights migrate into per-chip CMEM, and
request latency stays roughly flat.
"""

from repro.core import PipelineDeployment
from repro.util.tables import Table
from repro.workloads import app_by_name

from benchmarks.conftest import record, run_once

APPS = ("bert1", "rnn1")
RING_SIZES = (1, 2, 4)


def build_figure() -> str:
    deployment = PipelineDeployment()
    table = Table([
        "app", "chips", "latency ms", "qps", "speedup", "qps/chip",
        "worst CMEM residency",
    ], title="Figure: pipeline-parallel scaling on the TPUv4i ICI ring")
    for name in APPS:
        spec = app_by_name(name)
        reports = deployment.scaling_study(spec.build, spec.default_batch,
                                           RING_SIZES)
        base = reports[0].throughput_qps
        for report in reports:
            table.add_row([
                name, report.num_chips,
                report.request_latency_s * 1e3,
                report.throughput_qps,
                f"{report.throughput_qps / base:.2f}x",
                report.throughput_qps / report.num_chips,
                f"{report.min_cmem_hit:.0%}",
            ])
    return table.render()


def test_fig_multichip_scaling(benchmark):
    text = run_once(benchmark, build_figure)
    record("E16_fig_multichip", text)
    assert "speedup" in text
