"""E15 (paper synthesis): re-deriving the TPUv4i design point.

Sweeps MXU count x CMEM capacity under the air-cooling TDP ceiling
(Lesson 8 as a hard constraint) and prints the candidates with the Pareto
frontier marked. The shipped configuration — 4 MXUs, 128 MiB CMEM — sits
on the frontier; 8-MXU designs bust the air envelope or waste MXUs on
memory-bound apps.
"""

from repro.core import enumerate_candidates, evaluate_candidates, pareto_frontier
from repro.util.tables import Table

from benchmarks.conftest import record, run_once


def build_figure() -> str:
    # Fan the grid out over the engine's process pool (sized to the
    # machine); results are identical to the serial loop, in order.
    candidates = evaluate_candidates(
        enumerate_candidates(mxu_counts=(2, 4, 8),
                             cmem_mib_options=(0, 64, 128)))
    frontier = set(id(c) for c in pareto_frontier(candidates))
    table = Table([
        "config", "geomean qps", "TDP est W", "air-coolable", "die mm2 est",
        "qps/W", "on Pareto frontier",
    ], title="Figure: design-space sweep around TPUv4i (air-cooled frontier)")
    for candidate in sorted(candidates, key=lambda c: c.tdp_estimate_w):
        table.add_row([
            candidate.chip.name, candidate.geomean_qps,
            candidate.tdp_estimate_w, candidate.air_coolable,
            candidate.die_mm2_estimate, candidate.qps_per_watt,
            id(candidate) in frontier,
        ])
    chosen = [c for c in candidates
              if c.chip.mxus_per_core == 4 and "128m" in c.chip.name]
    footer = (f"shipped-like point ({chosen[0].chip.name}) on frontier: "
              f"{id(chosen[0]) in frontier}")
    return table.render() + "\n" + footer


def test_fig_design_space(benchmark):
    text = run_once(benchmark, build_figure)
    record("E15_fig_dse", text)
    assert "frontier" in text
