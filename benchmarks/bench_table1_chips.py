"""E1 (paper Table 1): key characteristics of the four TPU generations.

Regenerates the chip-characteristics table from the library's configs and
bottom-up models (peak TOPS from the MXU organization, TDP estimate from
the power model), so every number in the table is *derived*, not typed in.
"""

from repro.arch import GENERATIONS, PowerModel
from repro.util.units import GHZ, GIB, GIGA, MIB
from repro.util.tables import Table

from benchmarks.conftest import record, run_once


def build_table() -> str:
    table = Table([
        "chip", "year", "process", "die mm2", "cores", "MXUs/core",
        "clock GHz", "peak TOPS", "on-chip MiB", "offchip GiB",
        "mem BW GB/s", "TDP W", "TDP est W", "cooling", "dtypes",
    ], title="Table 1: key characteristics of the TPU generations")
    for chip in GENERATIONS:
        dtype = "int8" if chip.generation == 1 else "bf16"
        table.add_row([
            chip.name,
            chip.year_deployed,
            chip.process,
            chip.die_mm2,
            chip.cores,
            chip.mxus_per_core,
            chip.clock_hz / GHZ,
            chip.peak_tops,
            chip.on_chip_bytes / MIB,
            chip.hbm_bytes / GIB,
            chip.hbm_bw / GIGA,
            chip.tdp_w,
            PowerModel(chip).tdp_estimate_w(dtype),
            chip.cooling,
            "/".join(chip.dtypes),
        ])
    return table.render()


def test_table1_chip_characteristics(benchmark):
    text = run_once(benchmark, build_table)
    record("E1_table1_chips", text)
    assert "TPUv4i" in text
