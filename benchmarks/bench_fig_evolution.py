"""E4 (paper figure, Lesson 6): the workload mix evolves under you.

Prints the 2016-2020 inference mix by model family: MLP/RNN shrink,
transformers surge from 5% to ~31% — on hardware architected before
transformers existed.
"""

from repro.util.tables import Table, bar_chart
from repro.workloads import WORKLOAD_MIX_BY_YEAR
from repro.workloads.evolution import CATEGORIES, transformer_trend

from benchmarks.conftest import record, run_once


def build_figure() -> str:
    table = Table(["year"] + list(CATEGORIES),
                  title="Figure (L6): inference cycles by model family")
    for year in sorted(WORKLOAD_MIX_BY_YEAR):
        mix = WORKLOAD_MIX_BY_YEAR[year]
        table.add_row([year] + [f"{mix[c]:.0%}" for c in CATEGORIES])

    trend = transformer_trend()
    chart = bar_chart([str(year) for year, _ in trend],
                      [share for _, share in trend],
                      title="transformer share of inference cycles")
    return table.render() + "\n\n" + chart


def test_fig_workload_evolution(benchmark):
    text = run_once(benchmark, build_figure)
    record("E4_fig_evolution", text)
    assert "Transformer" in text
