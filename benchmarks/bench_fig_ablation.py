"""E19 (design ablation): remove TPUv4i's features one at a time.

Each DESIGN.md-called-out choice gets an ablated variant: no CMEM, a
two-core split of the same MXUs (the training-chip organization), halved
HBM bandwidth, and a 700 MHz clock. Evaluated on one app per family at
the apps' serving batches. The shape: every ablation loses somewhere —
CMEM protects weight-streaming apps, the single big core protects
latency, HBM bandwidth protects the memory-bound tail.
"""

import math

from repro.arch import TPUV4I
from repro.core import DesignPoint
from repro.util.tables import Table
from repro.util.units import GIGA, MHZ

from benchmarks.conftest import record, run_once
from repro.workloads import app_by_name

APPS = ("mlp1", "cnn0", "rnn0", "bert0")

VARIANTS = (
    ("TPUv4i (shipped)", TPUV4I),
    ("no CMEM", TPUV4I.variant("v4i-nocmem", cmem_bytes=0, cmem_bw=0.0)),
    ("2 small cores", TPUV4I.variant("v4i-2core", cores=2, mxus_per_core=2)),
    ("half HBM BW", TPUV4I.variant("v4i-halfbw", hbm_bw=307 * GIGA)),
    ("700 MHz clock", TPUV4I.variant("v4i-slow", clock_hz=700 * MHZ)),
)


def build_figure() -> str:
    table = Table(
        ["variant"] + [f"{a} ms" for a in APPS]
        + ["geomean qps", "vs shipped"],
        title="Figure: ablating TPUv4i's design choices (latency + throughput)")
    baseline_qps = None
    for label, chip in VARIANTS:
        point = DesignPoint(chip)
        latencies = []
        qps = []
        for name in APPS:
            spec = app_by_name(name)
            evaluation = point.evaluate(spec)
            latencies.append(evaluation.latency_s * 1e3)
            qps.append(evaluation.chip_qps)
        geomean = math.prod(qps) ** (1 / len(qps))
        if baseline_qps is None:
            baseline_qps = geomean
        table.add_row([label] + [f"{l:.2f}" for l in latencies]
                      + [geomean, f"{geomean / baseline_qps:.2f}x"])
    return table.render()


def test_fig_design_ablation(benchmark):
    text = run_once(benchmark, build_figure)
    record("E19_fig_ablation", text)
    assert "shipped" in text
