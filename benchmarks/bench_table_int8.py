"""E17 (Lesson 7 trade-off): what int8 actually buys — and costs.

Compiles each production app both ways on TPUv4i: native bf16 (deploy
as-is) and post-training int8 (quantize everything). Reports the speedup
(memory-bound apps gain; compute-bound ones do not — the MXU rate is the
same), the energy saving, and the quality cost from E14's numerics. The
combination is the paper's argument for supporting *both* formats.
"""

from repro.arch import TPUV3, TPUV4I
from repro.compiler import compile_model
from repro.compiler.pipeline import retarget_dtype
from repro.mlcompat import check_numerics_match
from repro.sim import TensorCoreSim
from repro.util.tables import Table
from repro.workloads import PRODUCTION_APPS

from benchmarks.conftest import record, run_once


def build_table() -> str:
    sim = TensorCoreSim(TPUV4I)
    table = Table([
        "app", "bf16 ms", "int8 ms", "speedup", "bf16 J/inf", "int8 J/inf",
        "energy gain", "est. quality loss pp",
    ], title="Table: int8 vs bf16 deployment on TPUv4i")
    for index, spec in enumerate(PRODUCTION_APPS):
        module = spec.build(spec.default_batch)
        bf16 = sim.run(compile_model(module, TPUV4I).program)
        quantized = retarget_dtype(module, "int8")
        int8 = sim.run(compile_model(quantized, TPUV4I).program, dtype="int8")
        quality = check_numerics_match(TPUV3, TPUV4I, "int8", seed=index)
        table.add_row([
            spec.name,
            bf16.seconds * 1e3,
            int8.seconds * 1e3,
            f"{bf16.seconds / int8.seconds:.2f}x",
            bf16.report.energy_j,
            int8.report.energy_j,
            f"{bf16.report.energy_j / int8.report.energy_j:.2f}x",
            quality.est_quality_loss_pct,
        ])
    footer = ("int8 helps where weight traffic dominates and always saves "
              "energy — but every row pays a calibration study; bf16 rows "
              "deploy with training bits unchanged (Lesson 7 + 10).")
    return table.render() + "\n" + footer


def test_table_int8_tradeoff(benchmark):
    text = run_once(benchmark, build_table)
    record("E17_table_int8", text)
    assert "int8" in text
