"""E3 (paper figure, Lesson 5): DNN model size grows ~1.5x per year.

Plots the paper's 1.5x/yr projection against published milestone models
and reports the fitted growth rate (which exceeds the lesson's figure —
the lesson is conservative).
"""

from repro.util.tables import Table, bar_chart
from repro.workloads import GrowthModel, PUBLISHED_MODEL_SIZES
from repro.workloads.growth import fitted_growth_rate

from benchmarks.conftest import record, run_once


def build_figure() -> str:
    model = GrowthModel(base_year=2015, base_size=25.6)  # anchored at ResNet-50
    table = Table(["model", "year", "params (M)", "1.5x/yr projection (M)"],
                  title="Figure (L5): DNN growth vs the 1.5x/yr lesson")
    for name, year, size in PUBLISHED_MODEL_SIZES:
        table.add_row([name, year, size, model.size_at(year)])

    chart = bar_chart(
        [f"{name} ({year})" for name, year, _ in PUBLISHED_MODEL_SIZES],
        [size for _, _, size in PUBLISHED_MODEL_SIZES],
        title="published parameter counts (M)")
    rate = fitted_growth_rate()
    footer = (f"fitted annual growth of milestones: {rate:.2f}x/yr "
              f"(paper lesson: 1.5x/yr; demand outgrew even the lesson)")
    return "\n".join([table.render(), "", chart, "", footer])


def test_fig_dnn_growth(benchmark):
    text = run_once(benchmark, build_figure)
    record("E3_fig_growth", text)
    assert "1.5x/yr" in text
