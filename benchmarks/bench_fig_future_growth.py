"""E20 (Lesson 5 applied): serving tomorrow's models on today's chip.

Grows a BERT-class serving model 0-4 years along the 1.5x/yr curve and
deploys each vintage on TPUv4i at batch 16 under a 15 ms SLO. Two shapes
to reproduce:

* the SLO margin erodes from ~5x to ~1x across the chip's deployment
  window — the design had to be provisioned for the *end-of-life*
  workload, not the launch workload;
* holding a fixed 5k-qps service costs ~5x more chips four years in.

(Multi-chip pipelines rescue *capacity-bound* models — see E16; a grown
compute-bound transformer simply needs more chips, which is the point.)
"""

import math

from repro.arch import TPUV4I
from repro.core import DesignPoint
from repro.util.tables import Table
from repro.workloads.future import deployment_lifetime, scaled_transformer

from benchmarks.conftest import record, run_once

SLO_MS = 15.0
BATCH = 16
SERVICE_QPS = 5000.0


def build_figure() -> str:
    point = DesignPoint(TPUV4I)
    entries = deployment_lifetime(point, slo_ms=SLO_MS, batch=BATCH)

    table = Table([
        "years", "model", "growth", "weights MiB", "latency ms",
        "SLO margin", "chip qps", f"chips @ {SERVICE_QPS:.0f} qps",
    ], title=f"Figure: 1.5x/yr growth vs a fixed TPUv4i deployment "
             f"(batch {BATCH}, {SLO_MS:.0f} ms SLO)")
    for entry in entries:
        model = scaled_transformer(entry.years)
        table.add_row([
            int(entry.years),
            f"H{model.hidden}xL{model.layers}",
            f"{model.growth_factor:.2f}x",
            entry.weight_mib,
            entry.latency_ms,
            f"{SLO_MS / entry.latency_ms:.1f}x",
            entry.qps,
            math.ceil(SERVICE_QPS / entry.qps),
        ])
    chips_start = math.ceil(SERVICE_QPS / entries[0].qps)
    chips_end = math.ceil(SERVICE_QPS / entries[-1].qps)
    footer = (f"SLO margin {SLO_MS / entries[0].latency_ms:.1f}x at design "
              f"-> {SLO_MS / entries[-1].latency_ms:.1f}x at year 4; fixed "
              f"5k-qps fleet {chips_start} -> {chips_end} chips "
              f"({chips_end / chips_start:.1f}x). Provision for the "
              f"end-of-life workload, not the launch one.")
    return table.render() + "\n" + footer


def test_fig_future_growth(benchmark):
    text = run_once(benchmark, build_figure)
    record("E20_fig_future_growth", text)
    assert "1.5x/yr" in text
