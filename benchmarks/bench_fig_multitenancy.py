"""E11 (paper discussion, Lesson 4): multi-tenancy support pays.

Serves interleaved traffic from 1-4 co-resident models under three
policies: ``swap_host`` (no provisioned co-residency: every switch hauls
weights over PCIe), ``swap`` (all tenants HBM-resident; switches restage
CMEM only), and ``partition`` (CMEM split up front, switches free). The
ordering partition <= swap << swap_host is the lesson: the hardware must
carry enough memory to keep every tenant hot.
"""

from repro.serving import MultiTenantSim, Tenant
from repro.util.tables import Table
from repro.workloads import RequestGenerator, app_by_name

from benchmarks.conftest import record, run_once

TENANT_SETS = (
    ("cnn0",),
    ("cnn0", "rnn0"),
    ("cnn0", "rnn0", "bert0", "mlp1"),
)


def build_figure(point) -> str:
    table = Table([
        "tenants", "policy", "p99 ms", "mean ms", "qps", "swaps",
        "swap time ms",
    ], title="Figure: multi-tenant serving, swap vs CMEM partition")
    for names in TENANT_SETS:
        tenants = [Tenant(app_by_name(n), 30) for n in names]
        sim = MultiTenantSim(point, tenants)
        requests = RequestGenerator(11).multi_tenant(
            list(names), [30.0] * len(names), duration_s=2.0)
        for policy in ("swap_host", "swap", "partition"):
            stats = sim.simulate(requests, policy)
            table.add_row([
                "+".join(names), policy, stats.p99_s * 1e3,
                stats.mean_latency_s * 1e3, stats.throughput_qps,
                stats.swap_count, stats.swap_seconds_total * 1e3,
            ])
    return table.render()


def test_fig_multitenancy(benchmark, v4i_point):
    text = run_once(benchmark, lambda: build_figure(v4i_point))
    record("E11_fig_multitenancy", text)
    assert "partition" in text
