"""E14 (paper Lessons 7 & 10): bf16 deploys as-is; int8 needs a study.

Per app: SNR and estimated quality loss of the bf16 path (bit-exact with
the trainer) and the calibrated int8 path on a representative layer-sized
matmul. The bf16 column is what "backwards ML compatibility" buys:
deploy-as-is, zero quality review.
"""

from repro.arch import TPUV3, TPUV4I
from repro.mlcompat import check_numerics_match, deployment_readiness
from repro.util.tables import Table
from repro.workloads import PRODUCTION_APPS

from benchmarks.conftest import record, run_once

# Representative layer width per app family (drives the test matmul size).
_SIZES = {"MLP": 512, "CNN": 256, "RNN": 512, "Transformer": 384}


def build_table() -> str:
    table = Table([
        "app", "bf16 bit-exact", "bf16 quality loss %", "int8 SNR dB",
        "int8 quality loss %", "int8 needs calibration",
    ], title="Table: deployment numerics per app (trained on TPUv3)")
    checks = []
    for index, spec in enumerate(PRODUCTION_APPS):
        size = _SIZES[spec.category]
        bf16 = check_numerics_match(TPUV3, TPUV4I, "bf16", seed=index,
                                    size=size)
        int8 = check_numerics_match(TPUV3, TPUV4I, "int8", seed=index,
                                    size=size)
        checks.extend([bf16, int8])
        table.add_row([
            spec.name, bf16.bit_exact, bf16.est_quality_loss_pct,
            int8.snr_db, int8.est_quality_loss_pct, int8.needs_calibration,
        ])
    summary = deployment_readiness(checks)
    footer = (f"deploy as-is: {summary['deploy_as_is']}/{summary['models']} "
              f"paths; worst estimated quality loss "
              f"{summary['worst_quality_loss_pct']:.2f} pp (all on int8)")
    return table.render() + "\n" + footer


def test_table_numerics(benchmark):
    text = run_once(benchmark, build_table)
    record("E14_table_numerics", text)
    assert "bf16" in text
