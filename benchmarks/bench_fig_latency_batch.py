"""E6 (paper figure, Lesson 9): applications limit latency, not batch size.

For each app: latency at growing batch sizes, the app's SLO line, and the
largest batch the SLO admits. Throughput keeps rising with batch — the
chip would happily take more — but the latency budget cuts it off first.
"""

from repro.serving import BatchPolicy
from repro.util.tables import Table
from repro.workloads import app_by_name

from benchmarks.conftest import record, run_once

APPS = ("mlp0", "cnn0", "rnn0", "bert0")
BATCHES = (1, 4, 16, 64, 128, 256)


def build_figure(point) -> str:
    sections = []
    for name in APPS:
        spec = app_by_name(name)
        table = Table(["batch", "latency ms", "chip qps", "meets SLO"],
                      title=f"{name} (SLO {spec.slo_ms} ms)")
        slo_batch = 0
        for batch in BATCHES:
            latency = point.latency_s(spec, batch)
            ok = latency * 1e3 <= spec.slo_ms
            if ok:
                slo_batch = batch
            table.add_row([batch, latency * 1e3,
                           point.chip.cores * batch / latency, ok])
        sections.append(table.render())
        sections.append(f"-> SLO-limited batch for {name}: {slo_batch}\n")
    return "\n".join(sections)


def test_fig_latency_vs_batch(benchmark, v4i_point):
    text = run_once(benchmark, lambda: build_figure(v4i_point))
    record("E6_fig_latency_batch", text)
    assert "SLO-limited batch" in text
