"""E23 (TCO mechanics): offline filler recovers idle inference cycles.

Interactive fleets are provisioned for peak, so off-peak utilization is
low — and OpEx dollars burn either way. Runs interactive cnn0 traffic at
several load levels, with and without an offline cnn1 filler tier. The
shape: the filler converts 60-95% idle into useful samples at a bounded
(one offline batch) cost to interactive p99 — utilization economics that
feed straight into the perf/TCO lesson.
"""

from repro.serving.priority import TwoTierServer
from repro.util.tables import Table
from repro.workloads import RequestGenerator, app_by_name

from benchmarks.conftest import record, run_once

RATES = (100, 500, 2000, 8000)
DURATION_S = 2.0


def build_figure(point) -> str:
    server = TwoTierServer(point, interactive=app_by_name("cnn0"),
                           offline=app_by_name("cnn1"), offline_batch=16)
    table = Table([
        "interactive qps", "busy (no filler)", "busy (filler)",
        "offline samples/s", "p99 ms (no filler)", "p99 ms (filler)",
    ], title="Figure: two-tier serving — idle cycles become offline work")
    for rate in RATES:
        requests = RequestGenerator(13).poisson("cnn0", rate, DURATION_S)
        idle = server.simulate(requests, DURATION_S, fill_idle=False)
        filled = server.simulate(requests, DURATION_S, fill_idle=True)
        table.add_row([
            rate,
            f"{idle.busy_fraction:.0%}",
            f"{filled.busy_fraction:.0%}",
            filled.offline_samples_per_s,
            idle.interactive_p99_s * 1e3,
            filled.interactive_p99_s * 1e3,
        ])
    footer = ("the filler holds the chip near 100% busy at every load "
              "level; interactive p99 pays at most one offline batch")
    return table.render() + "\n" + footer


def test_fig_two_tier(benchmark, v4i_point):
    text = run_once(benchmark, lambda: build_figure(v4i_point))
    record("E23_fig_two_tier", text)
    assert "filler" in text
