"""E8 (paper figure): TPUv4i vs TPUv3 — performance and performance/Watt.

Per app: chip-level throughput (all cores) and samples/joule on both
chips. The paper's shape: a modest perf win (the 7nm chip is *smaller*
and air-cooled) but a large perf/W win — TPUv4i's actual design target.
"""

import math

from repro.util.tables import Table, bar_chart
from repro.workloads import PRODUCTION_APPS

from benchmarks.conftest import record, run_once


def build_figure(v4i_point, v3_point) -> str:
    table = Table([
        "app", "v3 qps", "v4i qps", "perf ratio",
        "v3 qps/W", "v4i qps/W", "perf/W ratio",
    ], title="Figure: TPUv4i vs TPUv3, per production app (chip level)")
    perf_ratios, ppw_ratios, labels = [], [], []
    for spec in PRODUCTION_APPS:
        v3 = v3_point.evaluate(spec)
        v4i = v4i_point.evaluate(spec)
        perf = v4i.chip_qps / v3.chip_qps
        ppw = v4i.samples_per_joule / v3.samples_per_joule
        perf_ratios.append(perf)
        ppw_ratios.append(ppw)
        labels.append(spec.name)
        table.add_row([spec.name, v3.chip_qps, v4i.chip_qps, perf,
                       v3.samples_per_joule, v4i.samples_per_joule, ppw])

    def geomean(values):
        return math.prod(values) ** (1 / len(values))

    chart = bar_chart(labels, ppw_ratios, title="perf/W ratio (v4i / v3)")
    footer = (f"geomean: perf {geomean(perf_ratios):.2f}x, "
              f"perf/W {geomean(ppw_ratios):.2f}x "
              "(paper shape: ~1.3x perf, >2x perf/W)")
    return "\n".join([table.render(), "", chart, "", footer])


def test_fig_v4i_vs_v3(benchmark, v4i_point, v3_point):
    text = run_once(benchmark, lambda: build_figure(v4i_point, v3_point))
    record("E8_fig_perf_per_watt", text)
    assert "geomean" in text
