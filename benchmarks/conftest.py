"""Shared benchmark fixtures and the artifact recorder.

Every benchmark regenerates one table/figure of the paper. The rendered
text goes to stdout *and* to ``benchmarks/artifacts/<experiment>.txt`` so
EXPERIMENTS.md can quote the measured output verbatim.

DesignPoints are session-scoped, and all evaluation routes through the
shared engine (:mod:`repro.engine`): results are memoized in the
process-global EvalCache, so expensive workloads are evaluated once
across the whole suite — and, with ``REPRO_CACHE_DIR`` set, once across
*invocations* of the suite. The cache's hit/miss counters are written to
``artifacts/engine_cache_stats.txt`` at session end.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.arch import TPUV1, TPUV2, TPUV3, TPUV4I
from repro.core import DesignPoint
from repro.engine import get_cache

ARTIFACT_DIR = pathlib.Path(__file__).parent / "artifacts"


def record(experiment: str, text: str) -> str:
    """Print and persist one experiment's rendered output."""
    ARTIFACT_DIR.mkdir(exist_ok=True)
    path = ARTIFACT_DIR / f"{experiment}.txt"
    path.write_text(text + "\n")
    print(f"\n=== {experiment} ===\n{text}\n")
    return text


@pytest.fixture(scope="session")
def v4i_point() -> DesignPoint:
    return DesignPoint(TPUV4I)


@pytest.fixture(scope="session")
def v3_point() -> DesignPoint:
    return DesignPoint(TPUV3)


@pytest.fixture(scope="session")
def v2_point() -> DesignPoint:
    return DesignPoint(TPUV2)


def run_once(benchmark, func):
    """Run a bench body exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1)


def pytest_sessionfinish(session, exitstatus):
    """Record the engine cache's counters for the whole bench session."""
    ARTIFACT_DIR.mkdir(exist_ok=True)
    (ARTIFACT_DIR / "engine_cache_stats.txt").write_text(
        get_cache().describe() + "\n")
