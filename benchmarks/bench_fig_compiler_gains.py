"""E9 (paper figure, Lesson 2): performance arrives by compiler release.

Compiles every production app with each of the six releases spanning 15
months and reports speedup over the launch compiler. The paper's shape:
large per-app variance (some apps ~1.1x, some >3x) with a geomean near
1.9x — hardware performance that shipped as software.
"""

import math

from repro.arch import TPUV4I
from repro.compiler import RELEASES, compile_model
from repro.sim import TensorCoreSim
from repro.util.tables import Table
from repro.workloads import PRODUCTION_APPS

from benchmarks.conftest import record, run_once


def build_figure() -> str:
    sim = TensorCoreSim(TPUV4I)
    table = Table(["app"] + [v.name for v in RELEASES] + ["total gain"],
                  title="Figure: speedup over launch compiler, by release")
    totals = []
    for spec in PRODUCTION_APPS:
        module = spec.build(spec.default_batch)
        latencies = [
            sim.run(compile_model(module, TPUV4I, version=v).program).seconds
            for v in RELEASES
        ]
        base = latencies[0]
        gains = [base / l for l in latencies]
        totals.append(gains[-1])
        table.add_row([spec.name] + [f"{g:.2f}x" for g in gains]
                      + [f"{gains[-1]:.2f}x"])
    geomean = math.prod(totals) ** (1 / len(totals))
    footer = (f"geomean gain over 15 months of releases: {geomean:.2f}x "
              "(paper shape: ~1.9x geomean, wide per-app spread)")
    return table.render() + "\n" + footer


def test_fig_compiler_gains(benchmark):
    text = run_once(benchmark, build_figure)
    record("E9_fig_compiler_gains", text)
    assert "geomean" in text
