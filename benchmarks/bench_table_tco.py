"""E12 (paper Lesson 3): perf/TCO re-ranks the designs vs perf/CapEx.

Evaluates a mixed production workload (geomean over compute- and
memory-bound apps) on the three bf16 generations plus the design TPUv4i
*didn't* ship — an 8-MXU, liquid-cooled 320 W variant. The hot chip wins
the perf/CapEx ranking (more throughput from barely more silicon) but
loses on perf/TCO once three years of power, cooling, and provisioned
watts are paid — the decision Lesson 3 encodes.
"""

import math

from repro.arch import TPUV4I
from repro.core import DesignPoint
from repro.tco import chip_tco, perf_per_tco
from repro.tco.model import rank_designs
from repro.util.tables import Table
from repro.workloads import app_by_name

from benchmarks.conftest import record, run_once

# Mixed fleet: two compute-bound, two memory/serialization-bound apps.
APPS = ("mlp0", "cnn0", "rnn1", "bert0")


def hot_variant():
    """8 MXUs, liquid-cooled, 320 W: faster, cheap to buy, dear to own."""
    return TPUV4I.variant(
        "v4-hot", mxus_per_core=8, tdp_w=320.0, idle_w=95.0,
        cooling="liquid", isa_version=4)


def build_table(points) -> str:
    points = list(points) + [DesignPoint(hot_variant())]
    # One batched grid dispatch for the whole (point x app) table: the
    # v4-hot variant shares compiled content with TPUv4i (only MXU count
    # and power limits differ), so the batch compiles once per
    # (generation, app) and the per-point loop below is all cache hits.
    from repro.engine.grid import GridJob, evaluate_jobs
    evaluate_jobs([GridJob(point, app_by_name(name))
                   for point in points for name in APPS])
    table = Table([
        "chip", "geomean qps", "busy W", "CapEx $", "OpEx $ (3yr)", "TCO $",
        "OpEx share", "qps/CapEx$", "qps/TCO$",
    ], title="Table: 3-year TCO over the mixed production fleet")
    qps_by_chip = {}
    tcos = []
    for point in points:
        evals = [point.evaluate(app_by_name(name)) for name in APPS]
        qps = math.prod(e.chip_qps for e in evals) ** (1 / len(evals))
        busy_w = sum(e.chip_power_w for e in evals) / len(evals)
        tco = chip_tco(point.chip, busy_w)
        qps_by_chip[point.chip.name] = qps
        tcos.append(tco)
        table.add_row([
            point.chip.name, qps, busy_w, tco.capex_usd, tco.opex_usd,
            tco.total_usd, f"{tco.opex_share:.0%}",
            qps / tco.capex_usd, perf_per_tco(qps, tco),
        ])
    ranking = rank_designs(qps_by_chip, tcos)
    footer = (f"rank by perf/CapEx: {' > '.join(ranking['by_capex'])}\n"
              f"rank by perf/TCO:   {' > '.join(ranking['by_tco'])}")
    return table.render() + "\n" + footer


def test_table_tco(benchmark, v2_point, v3_point, v4i_point):
    text = run_once(benchmark,
                    lambda: build_table((v2_point, v3_point, v4i_point)))
    record("E12_table_tco", text)
    lines = text.splitlines()
    capex_rank = lines[-2].split(":")[1]
    tco_rank = lines[-1].split(":")[1]
    assert capex_rank.strip() != tco_rank.strip(), "Lesson 3 re-rank missing"
