"""E22 (Lesson 8, quantified): sustained performance under air vs liquid.

For TDP design points from 175 W to 450 W, compute the clock factor each
cooling solution sustains indefinitely, and run a 60-second transient
with a bursty load to show delivered performance. The shape: TPUv4i's
175 W sustains 100% on air; pushing the same heatsink to a 250-320 W
design silently taxes 10-25% of nominal performance — the air ceiling is
a *performance* ceiling, not just a mechanical one.
"""

from repro.arch import AIR_COOLING, LIQUID_COOLING, TPUV4I
from repro.arch.thermal import ThermalModel
from repro.util.tables import Table

from benchmarks.conftest import record, run_once

TDP_POINTS = (175.0, 250.0, 320.0, 450.0)


def build_figure() -> str:
    table = Table([
        "busy power W", "air sustained clock", "air delivered (bursty)",
        "liquid sustained clock",
    ], title="Figure: sustained clock factor by cooling solution")
    # Bursty trace: 40 s flat out, 10 s near-idle, 10 s flat out.
    for tdp in TDP_POINTS:
        chip = TPUV4I.variant(f"v4-{int(tdp)}w", tdp_w=tdp,
                              cooling="air" if tdp <= 200 else "liquid")
        trace = [tdp] * 400 + [chip.idle_w] * 100 + [tdp] * 100
        air = ThermalModel(chip, cooling=AIR_COOLING)
        liquid = ThermalModel(chip, cooling=LIQUID_COOLING)
        transient = air.simulate(trace, dt_s=0.1)
        table.add_row([
            tdp,
            f"{air.sustained_frequency_factor(tdp):.0%}",
            f"{ThermalModel.delivered_fraction(transient):.0%}",
            f"{liquid.sustained_frequency_factor(tdp):.0%}",
        ])
    footer = ("175 W (TPUv4i) runs flat out on air; hotter designs pay a "
              "silent 10-25% clock tax or buy liquid everywhere they deploy")
    return table.render() + "\n" + footer


def test_fig_thermal_throttling(benchmark):
    text = run_once(benchmark, build_figure)
    record("E22_fig_thermal", text)
    assert "sustained" in text
