"""E24 (public results): MLPerf-Inference-style submission table.

TPUv4i's public performance record is its MLPerf Inference submissions.
Regenerates a submission-shaped table for the three datacenter models
(ResNet-50, SSD-class detection, BERT-large QA) on TPUv3 and TPUv4i:
Offline throughput (big-batch, no latency bound) and Server throughput
(largest batch meeting the scenario latency bound). Shape to reproduce:
v4i edges v3 on throughput per chip while drawing a fraction of the
power — consistent with E8 on the production apps.
"""

from repro.serving import Slo
from repro.util.tables import Table
from repro.workloads import MLPERF_MODELS
from repro.workloads.models import WorkloadSpec

from benchmarks.conftest import record, run_once


def _spec_for(model) -> WorkloadSpec:
    return WorkloadSpec(
        name=model.name, category="MLPerf", build=model.build,
        slo_ms=model.scenario_latency_ms, default_batch=model.offline_batch,
        nonlinearity="-", description="MLPerf-style model")


def build_table(points) -> str:
    table = Table([
        "model", "chip", "offline qps", "server batch", "server qps",
        "power W", "offline qps/W",
    ], title="Table: MLPerf-Inference-style results (Offline and Server)")
    for model in MLPERF_MODELS:
        spec = _spec_for(model)
        for point in points:
            offline = point.evaluate(spec, batch=model.offline_batch)
            server_batch = point.max_batch_under_slo(
                spec, model.scenario_latency_ms / 1e3,
                candidates=(1, 2, 4, 8, 16, 32))
            server_qps = 0.0
            if server_batch:
                server_qps = point.evaluate(spec, batch=server_batch).chip_qps
            table.add_row([
                model.name, point.chip.name, offline.chip_qps,
                server_batch or "-", server_qps, offline.chip_power_w,
                offline.samples_per_joule,
            ])
    return table.render()


def test_table_mlperf(benchmark, v3_point, v4i_point):
    text = run_once(benchmark, lambda: build_table((v3_point, v4i_point)))
    record("E24_table_mlperf", text)
    assert "resnet50" in text
