"""E21 (Lesson 6 applied): the evolving mix punishes fixed-function designs.

A programmable DSA (TPUv4i: MXU + VPU + compiler) runs whatever the mix
becomes. A hypothetical fixed-function accelerator frozen on the 2016 mix
runs MLP/CNN/RNN natively but has no attention/GELU support, so
transformers fall back to host CPUs at ~50x worse throughput.

For each year's published mix, this bench computes the mix-weighted
throughput of both designs. The fixed-function part decays exactly as
fast as transformers rise — Lesson 6's case for programmability.
"""

from repro.util.tables import Table
from repro.workloads import WORKLOAD_MIX_BY_YEAR, app_by_name

from benchmarks.conftest import record, run_once

# Representative app per family for throughput accounting.
_FAMILY_APP = {"MLP": "mlp0", "CNN": "cnn0", "RNN": "rnn0",
               "Transformer": "bert0"}
_CPU_FALLBACK_PENALTY = 50.0


def build_figure(point) -> str:
    qps = {family: point.evaluate(app_by_name(app)).chip_qps
           for family, app in _FAMILY_APP.items()}

    table = Table([
        "year", "transformer share", "programmable qps (mix)",
        "fixed-function qps (mix)", "penalty",
    ], title="Figure: mix-weighted throughput, programmable vs fixed-function")
    first_ratio = None
    last_ratio = None
    for year in sorted(WORKLOAD_MIX_BY_YEAR):
        mix = WORKLOAD_MIX_BY_YEAR[year]
        # Harmonic (time-weighted) mean: each family gets its cycle share.
        programmable = 1.0 / sum(share / qps[family]
                                 for family, share in mix.items())
        fixed = 1.0 / sum(
            share / (qps[family] / (_CPU_FALLBACK_PENALTY
                                    if family == "Transformer" else 1.0))
            for family, share in mix.items())
        ratio = programmable / fixed
        first_ratio = first_ratio if first_ratio is not None else ratio
        last_ratio = ratio
        table.add_row([
            year, f"{mix['Transformer']:.0%}", programmable, fixed,
            f"{ratio:.1f}x",
        ])
    footer = (f"the programmability premium grows {first_ratio:.1f}x -> "
              f"{last_ratio:.1f}x across the deployment window: the mix "
              "you freeze for is not the mix you will serve")
    return table.render() + "\n" + footer


def test_fig_mix_fleet(benchmark, v4i_point):
    text = run_once(benchmark, lambda: build_figure(v4i_point))
    record("E21_fig_mix_fleet", text)
    assert "programmability" in text
