"""E7 (paper figure): the eight apps on TPUv4i's rooflines.

Two roofs — HBM-only and CMEM-blended (using each app's actual allocator
hit fraction) — plus each app's measured TOPS from the simulator. Apps
left of the HBM ridge climb when CMEM serves their weights; that vertical
gap is the figure's argument for spending 128 MiB of die on SRAM.
"""

from repro.arch import TPUV4I
from repro.roofline import chip_roofline, place_module
from repro.util.tables import Table
from repro.workloads import PRODUCTION_APPS

from benchmarks.conftest import record, run_once


def build_figure(point) -> str:
    hbm_roof = chip_roofline(TPUV4I, "hbm")
    table = Table([
        "app", "ops:byte", "HBM-bound?", "roof TOPS (HBM)",
        "roof TOPS (CMEM blend)", "measured TOPS",
    ], title=f"Figure: TPUv4i roofline (ridge @ {hbm_roof.ridge_ops_per_byte:.0f} ops/byte)")
    for spec in PRODUCTION_APPS:
        module = spec.build(spec.default_batch)
        compiled = point.compiled(spec, spec.default_batch)
        placed = place_module(module, TPUV4I,
                              cmem_hit_fraction=compiled.memory.cmem_hit_fraction)
        measured = point.evaluate(spec).achieved_tops_chip
        table.add_row([
            spec.name,
            placed.ops_per_byte,
            placed.memory_bound_hbm,
            placed.attainable_tops_hbm,
            placed.attainable_tops_cmem,
            measured,
        ])
    return table.render()


def test_fig_roofline(benchmark, v4i_point):
    text = run_once(benchmark, lambda: build_figure(v4i_point))
    record("E7_fig_roofline", text)
    assert "ops:byte" in text
